"""Static analysis passes: strategy verification, trace/chaos lint, source lint.

The passes run through a pluggable framework (DESIGN.md §10): each
registers a :class:`~repro.analysis.registry.PassSpec` (name, finding
codes with default severities, cache inputs, entry point) and emits
structured :class:`~repro.analysis.findings.Finding` records, which the
CLI renders as text, JSON, or SARIF 2.1.0 with content-addressed
incremental caching and ``--jobs`` parallelism (see
:mod:`repro.analysis.runner` and ``python -m repro.analysis --list``).

Eight passes guard the reproduction's correctness (see DESIGN.md §5 and
``python -m repro.analysis``):

* :func:`verify_strategy` / :func:`assert_valid` — static checks of a
  synthesized :class:`~repro.synthesis.strategy.Strategy` against a
  topology (flow conservation, root placement, aggregation, behaviour
  tuples, deadlock freedom);
* :func:`lint_trace` — physical-invariant checks over recorded fluid
  network traces (capacity, max-min fairness, byte conservation);
* :func:`lint_chaos` — the same physical invariants over a *fault-injected*
  run's trace, plus well-formedness of the ``chaos-*`` event stream
  (fraction bounds, capacity restoration, evictions have injected causes);
* :func:`lint_source` — AST determinism/convention lint over the source
  tree;
* ``lint_telemetry_run`` / ``lint_chrome_trace`` — structural checks over
  exported telemetry (span nesting, clock monotonicity, metric shapes);
* :func:`lint_recovery` — safety checks over a recovery control-plane
  journal (gapless total order, epoch discipline, single leader per
  epoch, quorum-backed commits, paired rollbacks);
* ``lint_observe_records`` — causal-chain checks over an observe
  watchdog's verdict log (evidence windows, verdict → re-probe →
  re-synthesis tracing, targeted probing, hysteresis discipline, and
  silence while disabled);
* :mod:`repro.analysis.race` — the sim-determinism race detector:
  static AST hazard checks over the order-sensitive packages plus a
  vector-clock happens-before replay of an executed telemetry run
  against the strategy-derived chunk-dependency DAG.

Only :mod:`repro.analysis.config` is imported eagerly: the runtime
executor consults :func:`verification_enabled` at import time, and the
verifier in turn imports the runtime — loading the heavy passes lazily
(PEP 562) keeps that cycle open. The pass entry points share their
module's name (``verify_strategy``, ``lint_trace``, ``lint_source``), so
import those *functions* from their submodules —
``from repro.analysis.verify_strategy import verify_strategy`` — while
the collision-free helpers below are re-exported here lazily.
"""

from __future__ import annotations

import importlib
from typing import Any

from repro.analysis.config import ENV_VERIFY, verification_enabled

_LAZY = {
    "Violation": ("repro.analysis.verify_strategy", "Violation"),
    "assert_valid": ("repro.analysis.verify_strategy", "assert_valid"),
    "stage_unreachable": ("repro.analysis.verify_strategy", "stage_unreachable"),
    "Finding": ("repro.analysis.findings", "Finding"),
    "SEVERITIES": ("repro.analysis.findings", "SEVERITIES"),
    "severity_rank": ("repro.analysis.findings", "severity_rank"),
    "from_violations": ("repro.analysis.findings", "from_violations"),
    "PassSpec": ("repro.analysis.registry", "PassSpec"),
    "PassResult": ("repro.analysis.registry", "PassResult"),
    "RuleSpec": ("repro.analysis.registry", "RuleSpec"),
    "iter_passes": ("repro.analysis.registry", "iter_passes"),
    "get_pass": ("repro.analysis.registry", "get_pass"),
    "run_passes": ("repro.analysis.runner", "run_passes"),
    "AnalysisCache": ("repro.analysis.cache", "AnalysisCache"),
    "fingerprint_strategy": ("repro.analysis.cache", "fingerprint_strategy"),
    "to_sarif": ("repro.analysis.sarif", "to_sarif"),
}

__all__ = ["ENV_VERIFY", "verification_enabled", *sorted(_LAZY)]


def __getattr__(name: str) -> Any:
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    value = getattr(importlib.import_module(module_name), attr)
    globals()[name] = value
    return value
