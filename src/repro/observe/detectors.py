"""Online change detectors: EWMA baselines and CUSUM statistics.

The watchdog's per-link and per-collective signals all share one shape:
an :class:`EwmaBaseline` learns what "normal" looks like for a stream of
samples, and a :class:`CusumDetector` accumulates the normalized
deviations from that baseline until a sustained shift crosses its firing
threshold. CUSUM (cumulative sum of deviations minus an allowance) is the
classical sequential change-point statistic: it ignores isolated noise —
each sample only contributes what exceeds the ``drift`` allowance — but a
persistent shift accumulates linearly, so detection latency is bounded by
``threshold / (shift - drift)`` samples for any shift larger than the
allowance.

Everything here is pure arithmetic over explicitly passed sample values
and timestamps (the sim clock): no wall-clock reads, no randomness, so
same-seed runs step every detector through identical states — which is
what makes verdict logs byte-identical across replays.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.errors import ObserveError


@dataclass
class EwmaBaseline:
    """Exponentially weighted moving average with a warm-up gate.

    The first ``warmup`` samples only feed the mean (no deviations are
    reported), so the baseline settles before anything downstream may
    fire. ``deviation`` is the *relative* shift ``(value - mean) / mean``
    when the mean is nonzero, which keeps one CUSUM threshold meaningful
    across links whose absolute bandwidths differ by orders of magnitude.
    """

    smoothing: float = 0.2
    warmup: int = 4
    #: Relative signals (throughputs, iteration times) normalize the
    #: deviation by the mean; absolute signals (residuals, lateness
    #: fractions — already zero-centred or dimensionless) report the
    #: mean-centred shift directly.
    relative: bool = True
    mean: float = 0.0
    samples: int = 0

    def __post_init__(self) -> None:
        if not 0.0 < self.smoothing <= 1.0:
            raise ObserveError("EWMA smoothing must be in (0, 1]")
        if self.warmup < 1:
            raise ObserveError("EWMA warmup must be >= 1")

    @property
    def warmed_up(self) -> bool:
        """Whether enough samples have arrived to trust deviations."""
        return self.samples >= self.warmup

    def update(self, value: float) -> Optional[float]:
        """Fold one sample in; returns its relative deviation, or ``None``
        during warm-up. The deviation is computed against the mean *before*
        the sample is folded in, so a step change reports at full size."""
        deviation: Optional[float] = None
        if self.warmed_up:
            if not self.relative:
                deviation = value - self.mean
            elif self.mean != 0.0:
                deviation = (value - self.mean) / abs(self.mean)
            else:
                deviation = value
        if self.samples == 0:
            self.mean = value
        else:
            self.mean += self.smoothing * (value - self.mean)
        self.samples += 1
        return deviation

    def reset(self) -> None:
        """Forget the learned baseline (used after a targeted re-probe:
        the refreshed link costs define a new normal)."""
        self.mean = 0.0
        self.samples = 0


@dataclass
class CusumDetector:
    """Two-sided CUSUM over a stream of (relative) deviations.

    ``positive`` accumulates upward shifts, ``negative`` downward ones;
    :meth:`update` returns ``True`` on the sample that pushes either side
    past ``threshold``. The caller decides what to do with a firing —
    typically raise a verdict and :meth:`reset`.
    """

    threshold: float = 1.5
    drift: float = 0.25
    positive: float = 0.0
    negative: float = 0.0

    def __post_init__(self) -> None:
        if self.threshold <= 0:
            raise ObserveError("CUSUM threshold must be positive")
        if self.drift < 0:
            raise ObserveError("CUSUM drift allowance must be non-negative")

    def update(self, deviation: float) -> bool:
        """Accumulate one deviation; returns whether the detector fired."""
        self.positive = max(0.0, self.positive + deviation - self.drift)
        self.negative = max(0.0, self.negative - deviation - self.drift)
        return self.fired

    @property
    def fired(self) -> bool:
        """Whether either side currently exceeds the threshold."""
        return self.positive > self.threshold or self.negative > self.threshold

    @property
    def statistic(self) -> float:
        """The larger of the two accumulated sides (for ranking subjects)."""
        return max(self.positive, self.negative)

    @property
    def direction(self) -> str:
        """Which side dominates: ``"up"``, ``"down"``, or ``"flat"``."""
        if self.positive > self.negative:
            return "up"
        if self.negative > self.positive:
            return "down"
        return "flat"

    def reset(self) -> None:
        """Zero both accumulators (after a verdict is raised)."""
        self.positive = 0.0
        self.negative = 0.0


@dataclass
class SignalTracker:
    """One monitored signal: baseline + CUSUM + bounded evidence window.

    The evidence window keeps the last ``window`` ``(sim_time, value)``
    samples so a verdict can cite the exact observations that fired it —
    the ``--observe`` lint rejects verdicts without one.
    """

    baseline: EwmaBaseline = field(default_factory=EwmaBaseline)
    cusum: CusumDetector = field(default_factory=CusumDetector)
    window: int = 8
    evidence: List[Tuple[float, float]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ObserveError("evidence window must hold at least one sample")

    def observe(self, now: float, value: float) -> bool:
        """Feed one timestamped sample; returns whether the CUSUM fired."""
        self.evidence.append((now, value))
        if len(self.evidence) > self.window:
            del self.evidence[: len(self.evidence) - self.window]
        deviation = self.baseline.update(value)
        if deviation is None:
            return False
        return self.cusum.update(deviation)

    @property
    def fired(self) -> bool:
        """Whether the underlying CUSUM currently exceeds its threshold."""
        return self.cusum.fired

    def snapshot_evidence(self) -> List[Tuple[float, float]]:
        """A copy of the current evidence window (oldest first)."""
        return list(self.evidence)

    def rebaseline(self) -> None:
        """Reset baseline + CUSUM but keep the evidence window rolling.

        Called after the adaptation the verdict asked for has happened:
        the refreshed link estimates define the new normal, and carrying
        the stale accumulation forward would re-fire on the old shift.
        """
        self.baseline.reset()
        self.cusum.reset()
