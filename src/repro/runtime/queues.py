"""Work and Result queues between the ML framework and the communicator.

The framework pushes tensors into the Work Queue; contexts poll it and
execute communications in order; communicated tensors land in the Result
Queue for continued computation (Fig. 4). Requests are matched by a
monotonically increasing sequence number so out-of-order completion of
parallel sub-collectives cannot reorder results.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

import numpy as np

from repro.simulation.engine import Event, Simulator
from repro.simulation.resources import Store
from repro.synthesis.strategy import Primitive


@dataclass
class WorkItem:
    """One communication request."""

    sequence: int
    primitive: Primitive
    tensor: np.ndarray
    rank: int
    metadata: Dict[str, Any] = field(default_factory=dict)


class WorkQueues:
    """Paired work/result queues for one rank."""

    _sequences = itertools.count()

    def __init__(self, sim: Simulator, rank: int):
        self.sim = sim
        self.rank = rank
        self.work = Store(sim)
        self.result = Store(sim)
        #: Optional fault-injection hook at the queue boundary: maps a
        #: submitted item to the list of items actually enqueued (``[]`` =
        #: dropped, ``[item, item]`` = duplicated). Installed by
        #: :meth:`repro.chaos.injector.ChaosInjector.attach_queues`; the
        #: submitter still gets a sequence number — losing a message must
        #: be invisible to the sender, that is what the service's timeout
        #: path is for.
        self.fault_filter: Optional[Callable[[WorkItem], List[WorkItem]]] = None

    def submit(self, primitive: Primitive, tensor: np.ndarray, **metadata: Any) -> int:
        """Push a request; returns its sequence number."""
        sequence = next(WorkQueues._sequences)
        item = WorkItem(sequence, primitive, tensor, self.rank, metadata)
        delivered = [item] if self.fault_filter is None else self.fault_filter(item)
        for entry in delivered:
            self.work.put(entry)
        return sequence

    def poll_work(self) -> Event:
        """Event yielding the next :class:`WorkItem` (FIFO)."""
        return self.work.get()

    def complete(self, item: WorkItem, output: np.ndarray) -> None:
        """Publish a finished request's output to the result queue."""
        self.result.put((item.sequence, output))

    def fetch_result(self) -> Event:
        """Event yielding the next (sequence, tensor) pair."""
        return self.result.get()

    def drain_results(self) -> Dict[int, np.ndarray]:
        """Non-blocking: all currently available results by sequence."""
        results: Dict[int, np.ndarray] = {}
        while True:
            item = self.result.try_get()
            if item is None:
                return results
            sequence, output = item
            results[sequence] = output
