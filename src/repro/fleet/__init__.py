"""repro.fleet — multi-job workload replay with interference attribution.

Fleet-level observability (DESIGN.md §14): replay N concurrent jobs —
each a rank subset with its own collective schedule — over one shared
:class:`~repro.simulation.fluid.FluidNetwork`, with a per-job telemetry
hub, watchdog, and re-synthesis loop. The per-job streams merge
collision-free into one fleet JSONL export; the aggregator reports
per-job goodput, Jain's fairness index, per-link contention timelines,
and cross-job interference attributions scored against the workload
generator's planted ground truth.

Quickstart::

    from repro.fleet import canonical_overlap_workload, replay

    result = replay(canonical_overlap_workload(seed=11))
    print(result.report["accuracy"])       # precision/recall vs ground truth
    open("fleet.jsonl", "w").write(result.merged_jsonl)

CLI: ``python -m repro.fleet`` (``--json`` for the raw report, ``--export``
for the merged stream); lint: ``python -m repro.analysis --fleet``.
"""

from repro.fleet.aggregate import (
    FleetAggregator,
    FleetAttribution,
    JobSummary,
    ScoringWindow,
    jain_index,
    overlap_seconds,
    score_attributions,
)
from repro.fleet.runner import (
    FleetResult,
    FleetRunner,
    LinkOccupancy,
    fleet_observe_config,
    replay,
)
from repro.fleet.workload import (
    ALLREDUCE,
    ALLTOALL,
    CollectiveOp,
    InterferenceWindow,
    JobTrace,
    Workload,
    WorkloadSpec,
    canonical_overlap_workload,
    dump_workload,
    generate_workload,
    load_workload,
    read_workload,
    three_job_workload,
)

__all__ = [
    "ALLREDUCE",
    "ALLTOALL",
    "CollectiveOp",
    "FleetAggregator",
    "FleetAttribution",
    "FleetResult",
    "FleetRunner",
    "InterferenceWindow",
    "JobSummary",
    "JobTrace",
    "LinkOccupancy",
    "ScoringWindow",
    "Workload",
    "WorkloadSpec",
    "canonical_overlap_workload",
    "dump_workload",
    "fleet_observe_config",
    "generate_workload",
    "jain_index",
    "load_workload",
    "overlap_seconds",
    "read_workload",
    "replay",
    "score_attributions",
    "three_job_workload",
]
