"""Tests for cloud traces and trace shaping."""

import pytest

from repro.hardware import Cluster, make_homo_cluster
from repro.network.shaping import TraceShaper
from repro.network.traces import CloudTrace, TracePoint, generate_cloud_trace
from repro.simulation import Simulator
from repro.simulation.records import TraceRecorder


class TestCloudTrace:
    def test_degradation_matches_paper_targets(self):
        trace = generate_cloud_trace(seed=1)
        stats = trace.degradation()
        assert stats["bandwidth_drop_from_peak"] == pytest.approx(0.34, abs=0.02)
        assert stats["latency_rise_from_best"] == pytest.approx(0.17, abs=0.02)

    def test_duration_six_hours_default(self):
        trace = generate_cloud_trace(seed=0)
        assert trace.duration == pytest.approx(6 * 3600, abs=60)

    def test_deterministic_given_seed(self):
        a = generate_cloud_trace(seed=42, duration=600)
        b = generate_cloud_trace(seed=42, duration=600)
        assert [p.bandwidth_fraction for p in a.points] == [
            p.bandwidth_fraction for p in b.points
        ]

    def test_different_seeds_differ(self):
        a = generate_cloud_trace(seed=1, duration=600)
        b = generate_cloud_trace(seed=2, duration=600)
        assert [p.bandwidth_fraction for p in a.points] != [
            p.bandwidth_fraction for p in b.points
        ]

    def test_sample_and_hold_lookup(self):
        trace = CloudTrace(
            [
                TracePoint(0.0, 1.0, 1.0),
                TracePoint(10.0, 0.5, 1.1),
                TracePoint(20.0, 0.8, 1.0),
            ]
        )
        assert trace.bandwidth_fraction(5.0) == 1.0
        assert trace.bandwidth_fraction(10.0) == 0.5
        assert trace.bandwidth_fraction(15.0) == 0.5
        assert trace.bandwidth_fraction(999.0) == 0.8
        assert trace.latency_factor(12.0) == pytest.approx(1.1)

    def test_amplification_deepens_dips(self):
        trace = CloudTrace([TracePoint(0.0, 0.8, 1.1)])
        amplified = trace.amplified(2.0)
        assert amplified.points[0].bandwidth_fraction == pytest.approx(0.6)
        assert amplified.points[0].latency_factor == pytest.approx(1.2)

    def test_amplification_identity_at_one(self):
        trace = generate_cloud_trace(seed=3, duration=600)
        same = trace.amplified(1.0)
        assert same.points[0].bandwidth_fraction == pytest.approx(
            trace.points[0].bandwidth_fraction
        )

    def test_amplification_clamped_positive(self):
        trace = CloudTrace([TracePoint(0.0, 0.3, 1.0)])
        amplified = trace.amplified(5.0)
        assert amplified.points[0].bandwidth_fraction >= 0.05

    def test_amplification_rejects_negative(self):
        trace = CloudTrace([TracePoint(0.0, 1.0, 1.0)])
        with pytest.raises(ValueError):
            trace.amplified(-1)

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            CloudTrace([])

    def test_invalid_generation_args(self):
        with pytest.raises(ValueError):
            generate_cloud_trace(duration=0)


class TestTraceShaper:
    def test_shaper_mutates_nic_bandwidth(self):
        sim = Simulator()
        cluster = Cluster(sim, make_homo_cluster(num_servers=2))
        trace = CloudTrace([TracePoint(0.0, 0.5, 1.0)])
        recorder = TraceRecorder()
        shaper = TraceShaper(cluster, trace, interval=1.0, recorder=recorder)
        nominal = cluster.nominal_nic_bandwidth(0)
        shaper.start()
        sim.run(until=0.5)
        assert cluster.nic_egress(0).capacity == pytest.approx(0.5 * nominal)
        assert len(recorder) > 0
        shaper.stop()
        sim.run(until=2.5)
        assert cluster.nic_egress(0).capacity == pytest.approx(nominal)

    def test_shaper_applies_amplification(self):
        sim = Simulator()
        cluster = Cluster(sim, make_homo_cluster(num_servers=2))
        trace = CloudTrace([TracePoint(0.0, 0.8, 1.0)])
        shaper = TraceShaper(cluster, trace, interval=1.0, amplification=2.0)
        shaper.start()
        sim.run(until=0.5)
        nominal = cluster.nominal_nic_bandwidth(0)
        assert cluster.nic_egress(0).capacity == pytest.approx(0.6 * nominal)
        shaper.stop()

    def test_shaper_respects_instance_subset(self):
        sim = Simulator()
        cluster = Cluster(sim, make_homo_cluster(num_servers=2))
        trace = CloudTrace([TracePoint(0.0, 0.5, 1.0)])
        shaper = TraceShaper(cluster, trace, interval=1.0, instance_ids=[1])
        shaper.start()
        sim.run(until=0.5)
        assert cluster.nic_egress(0).capacity == pytest.approx(
            cluster.nominal_nic_bandwidth(0)
        )
        assert cluster.nic_egress(1).capacity == pytest.approx(
            0.5 * cluster.nominal_nic_bandwidth(1)
        )
        shaper.stop()

    def test_mismatched_offsets_rejected(self):
        sim = Simulator()
        cluster = Cluster(sim, make_homo_cluster(num_servers=2))
        trace = CloudTrace([TracePoint(0.0, 1.0, 1.0)])
        with pytest.raises(ValueError):
            TraceShaper(cluster, trace, instance_ids=[0, 1], offsets=[0.0])
