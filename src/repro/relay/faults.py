"""Fault detection and recovery planning (Sec. IV-C.2).

After phase 1 completes, workers still not ready after ``T_fault`` —
five times the duration since the fastest worker became ready — are
declared faulty and excluded from the training group. Remaining workers
proceed with the current iteration's update, and the data loader is told
to redistribute shards so the global batch size stays constant (the
redistribution itself lives in :mod:`repro.training.data`).

The detector distinguishes three kinds of non-ready worker:

* **crashed** — the worker explicitly reported ``None`` (it will never be
  ready); evicted.
* **late** — the worker reported a ready time past the deadline; evicted.
* **unreported** — the worker has no entry at all in the ready map. This
  is *not* a fault: a rank that joined the group mid-iteration (elastic
  scale-out, or a transient worker rejoining after a crash) has simply not
  negotiated with the coordinator yet. It is given grace until it reports,
  instead of being evicted the instant it appears.

For comparison, PyTorch Elastic needs a 15 s keep-alive timeout plus a
full job restart; AdapCC's path is graph reconstruction only (Fig. 19c).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.errors import CoordinationError

#: The paper's multiplier on (now - fastest ready time).
FAULT_THRESHOLD_MULTIPLIER = 5.0
#: Environment variable overriding the default multiplier (operators tune
#: eviction aggressiveness per deployment without code changes).
ENV_FAULT_MULTIPLIER = "REPRO_FAULT_MULTIPLIER"
#: PyTorch Elastic's keep-alive window, for the comparison benches.
PYTORCH_ELASTIC_TIMEOUT_SECONDS = 15.0


def default_fault_multiplier() -> float:
    """The T_fault multiplier: ``REPRO_FAULT_MULTIPLIER`` if set, else 5."""
    env = os.environ.get(ENV_FAULT_MULTIPLIER)
    if env is None or not env.strip():
        return FAULT_THRESHOLD_MULTIPLIER
    try:
        return float(env)
    except ValueError as exc:
        raise CoordinationError(
            f"{ENV_FAULT_MULTIPLIER}={env!r} is not a number"
        ) from exc


@dataclass
class FaultReport:
    """Outcome of one fault-detection pass.

    ``faulty_ranks`` is the union of ``crashed_ranks`` (reported ``None``:
    will never be ready) and ``late_ranks`` (reported a ready time past the
    deadline). ``unreported_ranks`` never reported at all — mid-iteration
    joiners that get grace rather than eviction — and are deliberately
    *not* part of ``faulty_ranks``.
    """

    faulty_ranks: List[int]
    survivors: List[int]
    threshold_seconds: float
    detected_at: float
    crashed_ranks: List[int] = field(default_factory=list)
    late_ranks: List[int] = field(default_factory=list)
    unreported_ranks: List[int] = field(default_factory=list)
    #: Ranks that would have been declared late but held an armed grace
    #: window (a fresh rejoiner); they are counted among ``survivors``.
    graced_ranks: List[int] = field(default_factory=list)

    @property
    def any_faults(self) -> bool:
        """Whether any worker was declared faulty (unreported ranks are
        awaiting their first report, not faults)."""
        return bool(self.faulty_ranks)


class FaultDetector:
    """Applies the T_fault rule to a set of (possibly absent) ready times.

    A rank can additionally hold a one-shot **grace window**
    (:meth:`arm_grace`): the first detection pass that would declare it
    late instead keeps it as a survivor and consumes the window. The
    coordinator arms it when readmitting a rejoiner, whose first
    iteration back is routinely slow (cold caches, catch-up work) —
    evicting it again on that evidence would make rejoin useless. The
    window is *re-armable*: a rank that rejoins a second time gets a
    fresh one (the regression `tests/test_relay.py` guards). A crash
    (``None`` ready time) is never graced — grace covers slowness, not
    death — and leaves the window armed for the eventual real rejoin.
    """

    def __init__(self, multiplier: Optional[float] = None):
        if multiplier is None:
            multiplier = default_fault_multiplier()
        if multiplier <= 0:
            raise CoordinationError("fault multiplier must be positive")
        self.multiplier = multiplier
        self._graced: set = set()

    def arm_grace(self, ranks: Sequence[int]) -> None:
        """Arm (or re-arm) a one-shot grace window for each rank."""
        self._graced.update(ranks)

    def threshold(self, fastest_ready: float, phase1_end: float) -> float:
        """T_fault: 5× the duration since the fastest worker became ready,
        counted from phase-1 completion."""
        if phase1_end < fastest_ready:
            raise CoordinationError("phase 1 cannot end before the fastest worker is ready")
        return self.multiplier * (phase1_end - fastest_ready)

    def detect(
        self,
        ready_times: Dict[int, Optional[float]],
        participants: Sequence[int],
        fastest_ready: float,
        phase1_end: float,
    ) -> FaultReport:
        """Classify workers as crashed, late, unreported, or surviving.

        ``ready_times[rank]`` is the worker's (possibly future) ready time,
        or ``None`` for a worker that explicitly reported it will never be
        ready (crash). A rank *absent* from ``ready_times`` has never
        reported — e.g. it joined the group mid-iteration — and is listed
        as unreported rather than evicted.
        """
        deadline = phase1_end + self.threshold(fastest_ready, phase1_end)
        faulty: List[int] = []
        crashed: List[int] = []
        late: List[int] = []
        unreported: List[int] = []
        survivors: List[int] = []
        graced: List[int] = []
        for rank in participants:
            if rank not in ready_times:
                unreported.append(rank)
                continue
            ready = ready_times[rank]
            if ready is None:
                crashed.append(rank)
                faulty.append(rank)
            elif ready > deadline:
                if rank in self._graced:
                    # One free pass: the rejoiner survives (and is folded
                    # into phase 2 like any other late survivor).
                    self._graced.discard(rank)
                    graced.append(rank)
                    survivors.append(rank)
                else:
                    late.append(rank)
                    faulty.append(rank)
            else:
                survivors.append(rank)
        # ``participants`` is typically just the late workers; an empty
        # survivors list here only means every *straggler* is faulty — the
        # active workers continue. Whole-group exhaustion is checked by the
        # trainer.
        return FaultReport(
            faulty_ranks=faulty,
            survivors=survivors,
            threshold_seconds=deadline - phase1_end,
            detected_at=deadline,
            crashed_ranks=crashed,
            late_ranks=late,
            unreported_ranks=unreported,
            graced_ranks=graced,
        )
