"""Fig. 19(b) — top-1 accuracy under different aggregation regimes.

The paper trains VGG16 on a downscaled ImageNet and plots accuracy for:
AdapCC (two-phase relay aggregation), NCCL (full aggregation), 'Relay
Async' (discarding stragglers' tensors — converges worse), and
'AdapCC-nccl graph' (different aggregation order — harmless). We reproduce
the comparison on the convergence substrate (see DESIGN.md §2: accuracy
depends only on which gradients are aggregated when, which the substrate
preserves exactly).
"""

import pytest

from repro.bench import Series
from repro.training import AggregationMode, train_convergence

STEPS = 120
STRAGGLER_PROB = 0.9


def measure():
    runs = {}
    for mode in AggregationMode:
        runs[mode] = train_convergence(
            mode, steps=STEPS, straggler_prob=STRAGGLER_PROB, seed=6
        )
    return runs


def test_fig19b_model_accuracy(run_once):
    runs = run_once(measure)

    series = Series(
        "Fig. 19b — test accuracy by aggregation regime",
        "eval point",
        "accuracy",
    )
    any_run = next(iter(runs.values()))
    series.set_x(list(range(len(any_run.accuracies))))
    label = {
        AggregationMode.FULL: "NCCL (full)",
        AggregationMode.TWO_PHASE: "AdapCC (two-phase)",
        AggregationMode.REORDERED: "AdapCC-nccl graph",
        AggregationMode.ASYNC_DROP: "Relay Async",
    }
    for mode, run in runs.items():
        series.add(label[mode], run.accuracies)
    series.show()
    for mode, run in runs.items():
        print(f"{label[mode]:22s} final accuracy {run.final_accuracy:.3f}")

    full = runs[AggregationMode.FULL].final_accuracy
    # AdapCC's two-phase aggregation and a reordered graph match full
    # aggregation; discarding straggler tensors degrades convergence.
    assert abs(runs[AggregationMode.TWO_PHASE].final_accuracy - full) < 0.03
    assert abs(runs[AggregationMode.REORDERED].final_accuracy - full) < 0.03
    assert runs[AggregationMode.ASYNC_DROP].final_accuracy < full - 0.1
