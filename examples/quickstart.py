"""Quickstart: AdapCC collectives on a simulated heterogeneous cluster.

Builds the paper's heterogeneous setting (2 servers x 4 A100 + 2 servers
x 4 V100), initializes an AdapCC session (topology detection + link
profiling + strategy synthesis), and runs the main collectives, printing
the synthesized strategy and achieved algorithm bandwidth.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import AdapCCSession
from repro.hardware import MB, make_hetero_cluster


def main() -> None:
    print("== AdapCC quickstart on 2x4xA100 + 2x4xV100 (simulated) ==\n")
    session = AdapCCSession(make_hetero_cluster()).init()
    session.setup()

    report = session.detection
    for instance_id, info in sorted(report.instances.items()):
        print(
            f"instance {instance_id}: NIC on NUMA {info.nic_numa_node}, "
            f"{len(info.nvlink_pairs)} NVLink pairs detected "
            f"(probe took {info.probe_seconds * 1e3:.1f} ms)"
        )
    print()

    ranks = [gpu.rank for gpu in session.cluster.gpus]
    length = 1 << 16  # 64K float64 elements = 512 KB payload
    rng = np.random.default_rng(0)
    tensors = {rank: rng.standard_normal(length) for rank in ranks}
    tensor_bytes = length * 8

    # AllReduce: the gradient-synchronization workhorse. byte_scale scales
    # the simulated traffic to 64 MB while keeping payloads small.
    scale = 64 * MB / tensor_bytes
    result = session.allreduce(tensors, byte_scale=scale)
    expected = sum(tensors.values())
    assert np.allclose(result.outputs[0], expected)
    algbw = 64 * MB / result.duration
    print(f"AllReduce  64 MB: {result.duration * 1e3:7.2f} ms   Algo.bw {algbw / 1e9:5.2f} GB/s")

    reduced = session.reduce(tensors, root=0, byte_scale=scale)
    print(f"Reduce     64 MB: {reduced.duration * 1e3:7.2f} ms")

    broadcast = session.broadcast(tensors, root=0, byte_scale=scale)
    print(f"Broadcast  64 MB: {broadcast.duration * 1e3:7.2f} ms")

    a2a = session.alltoall(tensors, byte_scale=scale)
    print(f"AlltoAll   64 MB: {a2a.duration * 1e3:7.2f} ms")

    # Peek at a synthesized strategy.
    from repro.bench.visualize import render_strategy

    strategy = next(iter(session._strategies.values()))
    roots = [sc.root.index for sc in strategy.subcollectives if sc.root]
    print(f"\nsub-collective roots (spread over fast NICs): {roots}")
    print("\nfirst sub-collective's reduce tree ([+] = aggregation here):")
    print("\n".join(render_strategy(strategy, session.topology).splitlines()[:24]))


if __name__ == "__main__":
    main()
