"""Tests for the bench harness, report formatting, reconstruction model,
and the simulation trace recorder."""

import numpy as np
import pytest

from repro.bench import (
    BenchEnvironment,
    Series,
    Table,
    geometric_mean,
    measure_algorithm_bandwidth,
)
from repro.errors import ReproError
from repro.hardware import MB, make_homo_cluster
from repro.runtime.reconstruction import (
    ELASTIC_DETECT_SECONDS,
    adapcc_reconstruction_cost,
    nccl_restart_cost,
)
from repro.simulation.records import TraceRecorder
from repro.synthesis import Primitive


class TestGeometricMean:
    def test_basic(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)

    def test_single(self):
        assert geometric_mean([3.0]) == pytest.approx(3.0)

    def test_ignores_nonpositive(self):
        assert geometric_mean([2.0, 0.0, 8.0]) == pytest.approx(4.0)

    def test_empty(self):
        assert geometric_mean([]) == 0.0


class TestTable:
    def test_render_contains_rows_and_columns(self):
        table = Table("Title", ["a", "b"])
        table.add_row("row1", [1.5, 2.0])
        text = table.render()
        assert "Title" in text
        assert "row1" in text
        assert "1.500" in text
        assert "a" in text and "b" in text

    def test_mixed_types(self):
        table = Table("T", ["x"])
        table.add_row("r", ["str-value"])
        assert "str-value" in table.render()


class TestSeries:
    def test_render(self):
        series = Series("S", "x", "y")
        series.set_x([1, 2, 3])
        series.add("line", [0.1, 0.2, 0.3])
        text = series.render()
        assert "S" in text
        assert "line (y):" in text
        assert "0.1" in text


class TestBenchHarness:
    def test_environment_isolated_per_instantiation(self):
        env1 = BenchEnvironment(make_homo_cluster(num_servers=2), "nccl")
        env2 = BenchEnvironment(make_homo_cluster(num_servers=2), "nccl")
        assert env1.sim is not env2.sim
        assert env1.ranks == env2.ranks == list(range(8))

    def test_measure_algorithm_bandwidth_positive(self):
        bandwidth = measure_algorithm_bandwidth(
            make_homo_cluster(num_servers=2), "nccl", Primitive.ALLREDUCE, 8 * MB
        )
        assert bandwidth > 1e8  # > 100 MB/s

    def test_alltoall_payload_divisibility_handled(self):
        bandwidth = measure_algorithm_bandwidth(
            make_homo_cluster(num_servers=2),
            "nccl",
            Primitive.ALLTOALL,
            8 * MB,
            payload_elements=8190,  # not divisible by 8; harness pads
        )
        assert bandwidth > 0


class TestReconstructionModel:
    def test_adapcc_cost_sums_components(self):
        cost = adapcc_reconstruction_cost(0.1, 0.2, 0.3)
        assert cost.total == pytest.approx(0.6)
        assert cost.checkpoint_seconds == 0.0

    def test_adapcc_rejects_negative(self):
        with pytest.raises(ReproError):
            adapcc_reconstruction_cost(-0.1, 0.0, 0.0)

    def test_nccl_restart_scales_with_model_and_world(self):
        small = nccl_restart_cost(8, 100e6)
        big_model = nccl_restart_cost(8, 1000e6)
        big_world = nccl_restart_cost(64, 100e6)
        assert big_model.total > small.total
        assert big_world.total > small.total

    def test_fault_detection_adds_elastic_window(self):
        plain = nccl_restart_cost(8, 100e6)
        with_detect = nccl_restart_cost(8, 100e6, include_fault_detection=True)
        assert with_detect.total == pytest.approx(plain.total + ELASTIC_DETECT_SECONDS)

    def test_nccl_validation(self):
        with pytest.raises(ReproError):
            nccl_restart_cost(0, 100e6)
        with pytest.raises(ReproError):
            nccl_restart_cost(8, 0)

    def test_paper_savings_band(self):
        """AdapCC's reconstruction should save >70 % vs a restart for
        realistic component costs (paper: 74-91 %)."""
        adapcc = adapcc_reconstruction_cost(0.8, 0.5, 0.05)
        nccl = nccl_restart_cost(24, 528e6)
        assert 1.0 - adapcc.total / nccl.total > 0.7


class TestTraceRecorder:
    def test_record_and_filter(self):
        recorder = TraceRecorder()
        recorder.record(0.0, "event", "a", value=1)
        recorder.record(1.0, "other", "b", value=2)
        recorder.record(2.0, "event", "a", value=3)
        assert len(recorder) == 3
        events = recorder.of_kind("event")
        assert [r.payload["value"] for r in events] == [1, 3]

    def test_series_extraction(self):
        recorder = TraceRecorder()
        for t in range(5):
            recorder.record(float(t), "sample", "s", level=t * 10)
        times, values = recorder.series("sample", "level")
        assert times == [0.0, 1.0, 2.0, 3.0, 4.0]
        assert values == [0, 10, 20, 30, 40]

    def test_iteration(self):
        recorder = TraceRecorder()
        recorder.record(0.0, "k", "s")
        assert [r.kind for r in recorder] == ["k"]
