"""Convergence substrate for the model-accuracy experiment (Fig. 19b).

Accuracy under different communication regimes depends only on *which
gradients are aggregated, in what order* — not on the network. A small
numpy MLP trained on a synthetic classification task therefore reproduces
the figure's comparisons exactly:

* ``FULL`` — every worker's gradient in every step (NCCL's semantics);
* ``TWO_PHASE`` — AdapCC's relay control: stragglers' gradients arrive via
  phase 2 and are combined before the update — *identical result* to FULL
  by construction, so the curves coincide;
* ``ASYNC_DROP`` — the 'Relay Async' ablation: stragglers' gradients are
  simply dropped that step (biased updates → degraded convergence);
* ``REORDERED`` — the 'AdapCC-nccl graph' comparison: a different
  aggregation order changes floating-point rounding only (harmless).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.errors import TrainingError


class AggregationMode(enum.Enum):
    """Which gradients each training step aggregates, and in what order."""

    FULL = "full"
    TWO_PHASE = "two-phase"
    ASYNC_DROP = "async-drop"
    REORDERED = "reordered"


@dataclass
class ConvergenceRun:
    """Accuracy trajectory of one training configuration."""

    mode: AggregationMode
    accuracies: List[float]
    losses: List[float]

    @property
    def final_accuracy(self) -> float:
        """Accuracy at the last evaluation point."""
        return self.accuracies[-1]

    @property
    def best_accuracy(self) -> float:
        """Best accuracy seen at any evaluation point."""
        return max(self.accuracies)


def _make_dataset(
    rng: np.random.Generator, samples: int, features: int, classes: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Gaussian class clusters, *sorted by class*.

    Class-sorted order makes contiguous worker shards non-iid (each worker
    over-represents a few classes), which is what makes consistently
    dropping a straggler's gradients ('Relay Async') visibly hurt
    accuracy — the bias the paper's Fig. 19b shows.
    """
    centers = rng.normal(0.0, 1.1, size=(classes, features))
    per_class = samples // classes
    X_parts = []
    y_parts = []
    for c in range(classes):
        X_parts.append(centers[c] + rng.normal(0.0, 1.5, size=(per_class, features)))
        y_parts.append(np.full(per_class, c, dtype=np.int64))
    return np.concatenate(X_parts), np.concatenate(y_parts)


class _Mlp:
    """Two-layer MLP with explicit gradients (float32, like real training)."""

    def __init__(self, rng: np.random.Generator, features: int, hidden: int, classes: int):
        scale = 1.0 / np.sqrt(features)
        self.w1 = rng.normal(0, scale, size=(features, hidden)).astype(np.float32)
        self.b1 = np.zeros(hidden, dtype=np.float32)
        self.w2 = rng.normal(0, 1.0 / np.sqrt(hidden), size=(hidden, classes)).astype(np.float32)
        self.b2 = np.zeros(classes, dtype=np.float32)

    def forward(self, X: np.ndarray):
        """Forward pass; returns (pre-activation, activation, logits)."""
        z1 = X.astype(np.float32) @ self.w1 + self.b1
        a1 = np.maximum(z1, 0.0)
        logits = a1 @ self.w2 + self.b2
        return z1, a1, logits

    def gradients(self, X: np.ndarray, y: np.ndarray):
        """Mean cross-entropy gradients over the batch."""
        n = len(X)
        z1, a1, logits = self.forward(X)
        logits = logits - logits.max(axis=1, keepdims=True)
        exp = np.exp(logits)
        probs = exp / exp.sum(axis=1, keepdims=True)
        loss = float(-np.log(probs[np.arange(n), y] + 1e-12).mean())
        dlogits = probs
        dlogits[np.arange(n), y] -= 1.0
        dlogits /= n
        dw2 = a1.T @ dlogits
        db2 = dlogits.sum(axis=0)
        da1 = dlogits @ self.w2.T
        da1[z1 <= 0] = 0.0
        dw1 = X.astype(np.float32).T @ da1
        db1 = da1.sum(axis=0)
        return (dw1, db1, dw2, db2), loss

    def apply(self, grads, lr: float) -> None:
        """SGD step with the given gradients."""
        dw1, db1, dw2, db2 = grads
        self.w1 -= lr * dw1
        self.b1 -= lr * db1
        self.w2 -= lr * dw2
        self.b2 -= lr * db2

    def accuracy(self, X: np.ndarray, y: np.ndarray) -> float:
        """Top-1 accuracy on a labelled set."""
        _, _, logits = self.forward(X)
        return float((logits.argmax(axis=1) == y).mean())


def train_convergence(
    mode: AggregationMode,
    workers: int = 8,
    steps: int = 150,
    batch_per_worker: int = 32,
    straggler_prob: float = 0.3,
    lr: float = 0.08,
    features: int = 32,
    hidden: int = 64,
    classes: int = 10,
    dataset_size: int = 8000,
    eval_every: int = 10,
    seed: int = 0,
) -> ConvergenceRun:
    """Train one configuration and record its accuracy curve.

    ``straggler_prob`` is the chance a *slow-prone* worker is late in a
    step. As in real clusters, slowness is sticky: the last half of the
    workers are slow-prone, the rest are late only rarely. With non-iid
    shards this is what makes ASYNC_DROP lose the slow workers' data.
    """
    if workers < 2:
        raise TrainingError("need at least two workers")
    rng = np.random.default_rng(seed)
    X, y = _make_dataset(rng, dataset_size, features, classes)
    # Stratified holdout: every 5th sample of the class-sorted stream.
    test_mask = np.zeros(len(X), dtype=bool)
    test_mask[::5] = True
    X_test, y_test = X[test_mask], y[test_mask]
    X_train, y_train = X[~test_mask], y[~test_mask]
    model = _Mlp(np.random.default_rng(seed + 1), features, hidden, classes)

    slow_prone = set(range(workers - max(1, workers // 2), workers))
    shard = len(X_train) // workers
    accuracies: List[float] = []
    losses: List[float] = []
    cursor = 0
    for step in range(steps):
        grads_per_worker = []
        step_loss = 0.0
        for w in range(workers):
            lo = w * shard + cursor % max(1, shard - batch_per_worker)
            batch_X = X_train[lo : lo + batch_per_worker]
            batch_y = y_train[lo : lo + batch_per_worker]
            grads, loss = model.gradients(batch_X, batch_y)
            grads_per_worker.append(grads)
            step_loss += loss / workers
        cursor += batch_per_worker

        late = [
            w
            for w in range(workers)
            if rng.random() < (straggler_prob if w in slow_prone else straggler_prob / 10)
        ]
        if len(late) == workers:
            late = late[1:]  # someone is always on time

        if mode is AggregationMode.ASYNC_DROP and late:
            used = [g for w, g in enumerate(grads_per_worker) if w not in late]
        else:
            used = grads_per_worker

        order = list(range(len(used)))
        if mode is AggregationMode.REORDERED:
            rng.shuffle(order)
        elif mode is AggregationMode.TWO_PHASE and late:
            # Phase 1 sums the on-time gradients, phase 2 folds in the
            # stragglers afterwards — same multiset, different order.
            on_time = [w for w in range(workers) if w not in late]
            order = on_time + late

        summed = None
        for position in order:
            g = used[position]
            if summed is None:
                summed = [part.copy() for part in g]
            else:
                for acc, part in zip(summed, g):
                    acc += part
        averaged = [part / len(used) for part in summed]
        model.apply(averaged, lr)
        losses.append(step_loss)
        if step % eval_every == 0 or step == steps - 1:
            accuracies.append(model.accuracy(X_test, y_test))
    return ConvergenceRun(mode=mode, accuracies=accuracies, losses=losses)
