"""The GPU behaviour abstraction ``<isActive, hasRecv, hasKernel, hasSend>``
(Sec. IV-C.3, Fig. 7).

Given one sub-collective's communication graph and the set of ready
(active) workers, each GPU's behaviour on the graph is fully determined by
four booleans. The rules are the paper's, verbatim:

* ``isActive`` — the worker is ready (not a relay).
* ``hasRecv`` — some *active* rank exists in the node's predecessor
  subtree (checked recursively), so the node should wait for data.
* ``hasKernel`` — an aggregation kernel runs, unless (1) there is nothing
  to receive, (2) the node is a relay with a single active upstream branch
  (pure pass-through), or (3) the synthesizer disabled aggregation here
  (a_{m,g} = 0). Non-aggregating primitives never set it.
* ``hasSend`` — cleared when the node has nothing (neither local nor
  received data) to send, or has no successor (the root).

These tuples are exactly the behaviour the chunk executor exhibits; the
test suite cross-checks the two.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, Set

from repro.errors import CoordinationError
from repro.synthesis.strategy import Primitive, SubCollective
from repro.topology.graph import NodeKind


@dataclass(frozen=True)
class BehaviorTuple:
    """One GPU's behaviour on a communication graph with a ready-set."""

    is_active: bool
    has_recv: bool
    has_kernel: bool
    has_send: bool

    def as_tuple(self):
        """(isActive, hasRecv, hasKernel, hasSend), in the paper's order."""
        return (self.is_active, self.has_recv, self.has_kernel, self.has_send)


def _gpu_hops(sc: SubCollective) -> Dict[int, Set[int]]:
    """GPU-level children map: child rank -> set of parent ranks (next GPU
    on each flow path)."""
    children: Dict[int, Set[int]] = defaultdict(set)
    for flow in sc.flows:
        gpus = [node.index for node in flow.path if node.kind is NodeKind.GPU]
        for child, parent in zip(gpus, gpus[1:]):
            children[parent].add(child)
    return children


def behavior_tuples(
    sc: SubCollective,
    primitive: Primitive,
    active_ranks: Iterable[int],
) -> Dict[int, BehaviorTuple]:
    """Behaviour tuple for every GPU appearing in the sub-collective."""
    active = set(active_ranks)
    children_of = _gpu_hops(sc)
    all_gpus: Set[int] = set(children_of)
    for kids in children_of.values():
        all_gpus.update(kids)
    for flow in sc.flows:
        all_gpus.update(n.index for n in flow.path if n.kind is NodeKind.GPU)
    has_parent: Set[int] = set()
    for flow in sc.flows:
        gpus = [n.index for n in flow.path if n.kind is NodeKind.GPU]
        has_parent.update(gpus[:-1])

    # Recursive: does the subtree rooted at `rank` (inclusive) contain an
    # active rank?
    memo: Dict[int, bool] = {}

    def subtree_active(rank: int, visiting: Set[int]) -> bool:
        if rank in memo:
            return memo[rank]
        if rank in visiting:
            raise CoordinationError("cycle in communication graph")
        visiting.add(rank)
        result = rank in active or any(
            subtree_active(child, visiting) for child in children_of.get(rank, ())
        )
        visiting.remove(rank)
        memo[rank] = result
        return result

    tuples: Dict[int, BehaviorTuple] = {}
    for rank in sorted(all_gpus):
        is_active = rank in active
        active_branches = [
            child for child in children_of.get(rank, ()) if subtree_active(child, set())
        ]
        has_recv = bool(active_branches)

        if not primitive.needs_aggregation:
            has_kernel = False
        elif not has_recv:
            has_kernel = False  # condition (1): send local data only
        elif not is_active and len(active_branches) == 1:
            has_kernel = False  # condition (2): single-branch relay
        elif not sc.aggregates_at_rank(rank):
            has_kernel = False  # condition (3): synthesizer said no
        else:
            has_kernel = True

        has_send = (is_active or has_recv) and rank in has_parent
        tuples[rank] = BehaviorTuple(is_active, has_recv, has_kernel, has_send)
    return tuples
