"""ASCII rendering of synthesized strategies.

``render_strategy`` draws each sub-collective's communication graph as an
indented tree (reduce orientation: children send to parents), annotated
with link kinds and aggregation flags — the quickest way to see *what* the
synthesizer decided and why two profiling passes produced different
graphs.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Set, Tuple

from repro.synthesis.strategy import Strategy, SubCollective
from repro.topology.graph import LogicalTopology, NodeKind


def _gpu_tree(sc: SubCollective) -> Dict[int, List[int]]:
    """children[parent rank] -> list of child ranks, from GPU-level hops."""
    children: Dict[int, List[int]] = defaultdict(list)
    seen: Set[Tuple[int, int]] = set()
    for flow in sc.flows:
        gpus = [n.index for n in flow.path if n.kind is NodeKind.GPU]
        for child, parent in zip(gpus, gpus[1:]):
            if (child, parent) not in seen:
                seen.add((child, parent))
                children[parent].append(child)
    return children


def _hop_label(topology: Optional[LogicalTopology], a: int, b: int) -> str:
    if topology is None:
        return ""
    from repro.synthesis.routing import hop_path

    try:
        edges = topology.path_edges(hop_path(topology, a, b))
    except Exception:  # noqa: BLE001 - labels are best-effort decoration
        return ""
    kinds = {e.kind.value for e in edges}
    if "network" in kinds:
        return " ~net~"
    if "nvlink" in kinds:
        return " -nvl-"
    return " -pcie-"


def render_subcollective(
    sc: SubCollective,
    topology: Optional[LogicalTopology] = None,
) -> str:
    """One sub-collective as an indented reduce tree rooted at its root."""
    lines: List[str] = []
    if sc.root is None:
        flows = ", ".join(f"{f.src}->{f.dst}" for f in sc.flows[:8])
        more = "" if len(sc.flows) <= 8 else f" (+{len(sc.flows) - 8} more)"
        return f"  m{sc.index}: {len(sc.flows)} direct flows: {flows}{more}"
    children = _gpu_tree(sc)
    root = sc.root.index

    def draw(rank: int, prefix: str, hop: str) -> None:
        agg = "+" if sc.aggregates_at_rank(rank) else " "
        lines.append(f"{prefix}{hop}g{rank}[{agg}]")
        kids = sorted(children.get(rank, []))
        for kid in kids:
            label = _hop_label(topology, kid, rank)
            draw(kid, prefix + "   ", f"<-{label} ")

    header = (
        f"  m{sc.index}: size={sc.size / 1e6:.2f} MB, chunk={sc.chunk_size / 1e6:.2f} MB,"
        f" {sc.num_chunks} chunks"
    )
    lines.append(header)
    draw(root, "    ", "")
    return "\n".join(lines)


def render_strategy(strategy: Strategy, topology: Optional[LogicalTopology] = None) -> str:
    """Whole-strategy summary: header plus one tree per sub-collective.

    ``[+]`` marks ranks with aggregation enabled; hop labels show the link
    class each edge crosses (``~net~``, ``-nvl-``, ``-pcie-``).
    """
    lines = [
        f"{strategy.primitive.value} strategy ({strategy.routing_family}), "
        f"S={strategy.tensor_size / 1e6:.1f} MB, M={strategy.parallelism}, "
        f"predicted {strategy.predicted_time * 1e3:.2f} ms",
    ]
    for sc in strategy.subcollectives:
        lines.append(render_subcollective(sc, topology))
    return "\n".join(lines)
