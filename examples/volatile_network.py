"""Adapting to a volatile cloud network (paper Sec. II-B / VI-D).

A cloud bandwidth trace (34 % peak-to-trough degradation, as the paper
measures over 6 hours) is replayed onto the simulated NICs while an AdapCC
session keeps training-style AllReduces flowing. Periodic re-profiling
lets the synthesizer reroute around the currently-degraded server —
without checkpointing or restarting anything. The same workload on a
static strategy (profiling disabled) shows the cost of not adapting.

Run:  python examples/volatile_network.py
"""

import numpy as np

from repro import AdapCCSession
from repro.hardware import MB, make_homo_cluster
from repro.network.shaping import TraceShaper
from repro.network.traces import generate_cloud_trace


def run_session(adaptive: bool, rounds: int = 12) -> float:
    session = AdapCCSession(make_homo_cluster(num_servers=4)).init()
    session.setup()
    if adaptive:
        session.profile(period=3)  # re-profile every 3 collectives

    # Cross-traffic concentrates on specific servers (as in a shared
    # cluster): instances 1 and 2 see the amplified trace, 0 and 3 stay
    # clean — the asymmetry adaptive routing can exploit.
    trace = generate_cloud_trace(duration=600.0, seed=5)
    shaper = TraceShaper(
        session.cluster,
        trace,
        interval=0.25,
        amplification=2.5,
        instance_ids=[1, 2],
        offsets=[40.0, 250.0],
    )
    shaper.start()

    ranks = [gpu.rank for gpu in session.cluster.gpus]
    length = 4096
    tensors = {rank: np.ones(length) for rank in ranks}
    scale = 128 * MB / (length * 8)

    total = 0.0
    for _ in range(rounds):
        result = session.allreduce(tensors, byte_scale=scale, adaptive=False)
        total += result.duration
        # Let some trace time pass between iterations, as compute would.
        session.sim.run(until=session.sim.now + 2.0)
    shaper.stop()
    return total / rounds


def main() -> None:
    print("== 128 MB AllReduce under an amplified cloud bandwidth trace ==\n")
    adaptive = run_session(adaptive=True)
    static = run_session(adaptive=False)
    print(f"mean AllReduce time, re-profiling every 3 collectives: {adaptive * 1e3:8.2f} ms")
    print(f"mean AllReduce time, static initial strategy:          {static * 1e3:8.2f} ms")
    print(f"\nadaptivity speedup: {static / adaptive:.2f}x")
    print("(re-profiling lets the synthesizer avoid the currently-shaped NICs;")
    print(" the static strategy keeps pushing traffic through them)")


if __name__ == "__main__":
    main()
