"""Probe-based detection of intra-instance topology (paper Sec. IV-A).

The detector never reads the cluster's ground-truth placement fields; it
issues the same three probes AdapCC does on real servers and infers
placement from the *measured* outcomes:

1. **NIC NUMA affinity** — bind the local rank-0 host process to each NUMA
   node in turn and socket-loopback to the NIC; the node with the smallest
   latency is the NIC's home.
2. **GPU-pair PCIe locality** — one GPU floods the host over 8 parallel
   copies while the other GPU measures its own copy bandwidth; heavy
   degradation means a shared PCIe switch.
3. **NIC PCIe locality** — a GPU copies to the host while the CPU pushes
   data toward the NIC; degradation of the GPU copy means the NIC hangs
   off the same switch.

We additionally probe pairwise GPU bandwidth to classify NVLink vs PCIe
connectivity (what Blink's placement detection provides), since the
synthesizer needs to know which local edges are fast.

Probes on different instances run concurrently; probes within an instance
run sequentially so they do not interfere (as in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Set, Tuple

from repro.hardware.cluster import Cluster
from repro.hardware.links import MB
from repro.telemetry.core import hub as telemetry_hub

#: Probe transfer size (the paper uses 20 MB).
PROBE_BYTES = 20 * MB
#: Number of parallel flooding copies in the pair probe.
PROBE_PARALLELISM = 8
#: A probe bandwidth below this fraction of the solo baseline indicates
#: contention (shared switch). Shared-switch probes see ≤ 1/2 of solo.
CONTENTION_THRESHOLD = 0.75
#: Pairwise bandwidth above this multiple of the PCIe baseline classifies
#: the pair as NVLink-connected.
NVLINK_THRESHOLD = 1.5


@dataclass
class InstanceReport:
    """Detection output for one instance."""

    instance_id: int
    nic_numa_node: int
    nvlink_pairs: FrozenSet[Tuple[int, int]]
    same_switch_pairs: FrozenSet[Tuple[int, int]]
    nic_colocated_gpus: FrozenSet[int]
    probe_seconds: float


@dataclass
class DetectionReport:
    """Detection output for the whole job."""

    instances: Dict[int, InstanceReport] = field(default_factory=dict)

    def nvlink_pairs_by_instance(self) -> Dict[int, FrozenSet[Tuple[int, int]]]:
        """Mapping suitable for :meth:`LogicalTopology.from_cluster`."""
        return {iid: report.nvlink_pairs for iid, report in self.instances.items()}


class Detector:
    """Coordinates detection probes across all instances of a cluster."""

    def __init__(self, cluster: Cluster):
        self.cluster = cluster

    def detect(self) -> DetectionReport:
        """Run all probes and return the report.

        Advances the cluster's simulated clock by the probe time (detection
        happens once, in the job's initialization stage).
        """
        sim = self.cluster.sim
        report = DetectionReport()
        processes = [
            sim.process(self._probe_instance(instance.instance_id, report))
            for instance in self.cluster.instances
        ]
        done = sim.all_of(processes)
        sim.run_until_complete(done)
        return report

    # -- per-instance probe sequence ------------------------------------------------

    def _probe_instance(self, instance_id: int, report: DetectionReport):
        sim = self.cluster.sim
        start = sim.now
        telemetry = telemetry_hub()
        span = None
        if telemetry.enabled:
            span = telemetry.begin(
                "detect-probes",
                start,
                category="detect",
                track=f"instance:{instance_id}",
                instance=instance_id,
            )
        nic_numa = self._probe_nic_numa(instance_id)
        nvlink_pairs = yield from self._probe_nvlink_pairs(instance_id)
        same_switch = yield from self._probe_switch_locality(instance_id)
        colocated = yield from self._probe_nic_locality(instance_id)
        if span is not None:
            span.args.update(
                nic_numa_node=nic_numa,
                nvlink_pairs=len(nvlink_pairs),
                same_switch_pairs=len(same_switch),
                nic_colocated_gpus=len(colocated),
            )
            telemetry.end(span, sim.now)
            telemetry.metrics.counter(
                "detector_probe_rounds_total", "per-instance detection probe rounds"
            ).inc()
        report.instances[instance_id] = InstanceReport(
            instance_id=instance_id,
            nic_numa_node=nic_numa,
            nvlink_pairs=frozenset(nvlink_pairs),
            same_switch_pairs=frozenset(same_switch),
            nic_colocated_gpus=frozenset(colocated),
            probe_seconds=sim.now - start,
        )

    def _probe_nic_numa(self, instance_id: int) -> int:
        """Probe 1: smallest loopback latency over NUMA bindings."""
        instance = self.cluster.instances[instance_id]
        latencies = {
            numa: self.cluster.loopback_latency(instance_id, numa)
            for numa in range(instance.spec.num_numa_nodes)
        }
        return min(latencies, key=latencies.get)

    def _probe_nvlink_pairs(self, instance_id: int):
        """Pairwise bandwidth probe: classify NVLink vs PCIe connectivity."""
        instance = self.cluster.instances[instance_id]
        ranks = self.cluster.ranks_on_instance(instance_id)
        pcie_bw = instance.spec.pcie.bandwidth
        pairs: Set[Tuple[int, int]] = set()
        for a in range(len(ranks)):
            for b in range(a + 1, len(ranks)):
                bandwidth = yield from self._solo_bandwidth(
                    self.cluster.gpu_path(ranks[a], ranks[b])
                )
                if bandwidth > NVLINK_THRESHOLD * pcie_bw:
                    pairs.add((a, b))
        return pairs

    def _probe_switch_locality(self, instance_id: int):
        """Probe 2: concurrent d2h floods reveal a shared PCIe switch."""
        ranks = self.cluster.ranks_on_instance(instance_id)
        pairs: Set[Tuple[int, int]] = set()
        for a in range(len(ranks)):
            solo = yield from self._solo_bandwidth(self.cluster.gpu_to_host_path(ranks[a]))
            for b in range(a + 1, len(ranks)):
                measured = yield from self._contended_bandwidth(
                    victim_path=self.cluster.gpu_to_host_path(ranks[a]),
                    flood_path=self.cluster.gpu_to_host_path(ranks[b]),
                )
                if measured < CONTENTION_THRESHOLD * solo:
                    pairs.add((a, b))
        return pairs

    def _probe_nic_locality(self, instance_id: int):
        """Probe 3: a d2h copy racing a CPU→NIC send reveals NIC locality."""
        ranks = self.cluster.ranks_on_instance(instance_id)
        colocated: Set[int] = set()
        for local_idx, rank in enumerate(ranks):
            solo = yield from self._solo_bandwidth(self.cluster.gpu_to_host_path(rank))
            measured = yield from self._contended_bandwidth(
                victim_path=self.cluster.gpu_to_host_path(rank),
                flood_path=self.cluster.host_to_nic_path(instance_id),
            )
            if measured < CONTENTION_THRESHOLD * solo:
                colocated.add(local_idx)
        return colocated

    # -- probe primitives ---------------------------------------------------------

    def _solo_bandwidth(self, path):
        """Achieved bandwidth of a single probe transfer on ``path``."""
        sim = self.cluster.sim
        start = sim.now
        yield self.cluster.network.transfer(path, PROBE_BYTES, tag="probe")
        elapsed = sim.now - start
        return PROBE_BYTES / elapsed if elapsed > 0 else float("inf")

    def _contended_bandwidth(self, victim_path, flood_path):
        """Victim bandwidth while ``flood_path`` carries parallel probe flows."""
        sim = self.cluster.sim
        network = self.cluster.network
        flood_events = [
            network.transfer(flood_path, PROBE_BYTES, tag="probe-flood")
            for _ in range(PROBE_PARALLELISM)
        ]
        start = sim.now
        victim_event = network.transfer(victim_path, PROBE_BYTES, tag="probe-victim")
        yield victim_event
        elapsed = sim.now - start
        # Drain the flood so the next probe starts clean.
        yield sim.all_of(flood_events)
        return PROBE_BYTES / elapsed if elapsed > 0 else float("inf")
