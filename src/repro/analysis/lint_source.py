"""Determinism and convention lint over the ``repro`` source tree.

AST-based checks enforcing repo conventions that keep the reproduction
deterministic and its units unambiguous:

* **no ambient randomness** — the stdlib ``random`` module and
  ``numpy.random.seed`` global state are banned everywhere; randomness is
  threaded through explicit ``numpy.random.Generator`` objects (seeded at
  the session boundary), so any run is reproducible from its seed.
* **no wall-clock reads in deterministic code** — ``time.time()`` and
  friends inside ``simulation/``, ``runtime/`` or ``synthesis/`` would
  leak host time into simulated results. ``time.perf_counter`` /
  ``monotonic`` remain allowed: the synthesizer's solve-time bookkeeping
  (Fig. 19c) measures real optimizer wall-clock by design.
* **SI unit suffixes** — public parameters and module constants name their
  unit in SI terms (``_seconds``, ``_bytes``, ``_bps``); abbreviated
  suffixes (``_ms``, ``_gbps``, ``_mib``, …) are rejected because mixed
  abbreviations caused exactly the silent 1000× bugs this repo's
  conventions exist to prevent.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import List, Optional, Sequence

from repro.analysis.verify_strategy import Violation

#: Sub-packages whose code runs under (or feeds) the simulator clock.
#: ``telemetry`` is held to the same bar: it must never stamp records with
#: host time, or same-seed runs stop exporting byte-identical traces.
DETERMINISTIC_DIRS = (
    "simulation",
    "runtime",
    "synthesis",
    "telemetry",
    "recovery",
    "observe",
)

#: ``time`` module attributes that read the host wall clock.
_WALL_CLOCK_TIME = {"time", "time_ns", "localtime", "gmtime", "ctime", "asctime"}
#: ``datetime``/``date`` constructors that read the host wall clock.
_WALL_CLOCK_DATETIME = {"now", "utcnow", "today"}
#: Fully-qualified callables that read the host wall clock. Matching runs
#: on *resolved* names, so ``from time import time``, ``import time as t``
#: and ``from datetime import datetime as dt; dt.now()`` are all caught,
#: not just the literal ``time.time()`` attribute form.
_WALL_CLOCK_QUALIFIED = (
    {f"time.{attr}" for attr in _WALL_CLOCK_TIME}
    | {f"datetime.datetime.{attr}" for attr in _WALL_CLOCK_DATETIME}
    | {f"datetime.date.{attr}" for attr in _WALL_CLOCK_DATETIME}
)

#: Banned abbreviated unit suffixes -> the SI spelling to use instead.
BANNED_SUFFIXES = {
    "ms": "seconds",
    "us": "seconds",
    "ns": "seconds",
    "msec": "seconds",
    "msecs": "seconds",
    "secs": "seconds",
    "hrs": "seconds",
    "hours": "seconds",
    "gbps": "bps",
    "mbps": "bps",
    "kbps": "bps",
    "kb": "bytes",
    "mb": "bytes",
    "gb": "bytes",
    "kib": "bytes",
    "mib": "bytes",
    "gib": "bytes",
}


def _default_root() -> Path:
    return Path(__file__).resolve().parents[1]


def lint_source(
    root: Optional[Path] = None, files: Optional[Sequence[Path]] = None
) -> List[Violation]:
    """Lint every ``*.py`` file under ``root`` (default: the repro package)."""
    root = Path(root) if root is not None else _default_root()
    targets = [Path(f) for f in files] if files is not None else sorted(root.rglob("*.py"))
    violations: List[Violation] = []
    for path in targets:
        violations.extend(_lint_file(path, root))
    return violations


def _lint_file(path: Path, root: Path) -> List[Violation]:
    try:
        rel = path.resolve().relative_to(root.resolve())
    except ValueError:
        rel = path
    try:
        tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    except SyntaxError as exc:
        return [Violation("syntax", f"{rel}:{exc.lineno}", str(exc.msg))]
    in_deterministic = bool(rel.parts) and rel.parts[0] in DETERMINISTIC_DIRS
    checker = _Checker(str(rel), in_deterministic)
    checker.visit(tree)
    return checker.violations


class _Checker(ast.NodeVisitor):
    def __init__(self, rel: str, in_deterministic: bool):
        self.rel = rel
        self.in_deterministic = in_deterministic
        self.violations: List[Violation] = []
        #: Local alias -> fully-qualified origin, filled from import
        #: statements (``{"t": "time", "now": "time.time"}``), so wall
        #: clock matching resolves aliased and ``from``-imported names.
        self._imports: dict = {}

    def _add(self, check: str, node: ast.AST, detail: str) -> None:
        self.violations.append(
            Violation(check, f"{self.rel}:{getattr(node, 'lineno', 0)}", detail)
        )

    # -- ambient randomness ------------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name == "random" or alias.name.startswith("random."):
                self._add(
                    "ambient-random",
                    node,
                    "stdlib `random` is banned; thread a numpy Generator instead",
                )
            if alias.asname:
                self._imports[alias.asname] = alias.name
            else:
                top = alias.name.split(".", 1)[0]
                self._imports[top] = top
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "random" or (node.module or "").startswith("random."):
            self._add(
                "ambient-random",
                node,
                "stdlib `random` is banned; thread a numpy Generator instead",
            )
        if node.module and node.level == 0:
            for alias in node.names:
                self._imports[alias.asname or alias.name] = (
                    f"{node.module}.{alias.name}"
                )
        self.generic_visit(node)

    def _resolve(self, node: ast.expr) -> Optional[str]:
        """Fully-qualified dotted name of an expression, via import aliases."""
        if isinstance(node, ast.Name):
            return self._imports.get(node.id, node.id)
        if isinstance(node, ast.Attribute):
            base = self._resolve(node.value)
            return None if base is None else f"{base}.{node.attr}"
        return None

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            # numpy.random.seed(...) / np.random.seed(...): global RNG state.
            if (
                func.attr == "seed"
                and isinstance(func.value, ast.Attribute)
                and func.value.attr == "random"
            ):
                self._add(
                    "ambient-random",
                    node,
                    "numpy.random.seed mutates global state; use np.random.default_rng",
                )
        if self.in_deterministic:
            resolved = self._resolve(func)
            # ``from datetime import datetime; datetime.now()`` resolves to
            # ``datetime.datetime.now``; the bare ``datetime.now``/``date.now``
            # spellings cover direct module-style access.
            if resolved is not None and (
                resolved in _WALL_CLOCK_QUALIFIED
                or f"datetime.{resolved}" in _WALL_CLOCK_QUALIFIED
            ):
                self._add(
                    "wall-clock",
                    node,
                    f"`{resolved}` reads the host clock inside deterministic "
                    "code; use the simulator clock or perf_counter",
                )
        self.generic_visit(node)

    # -- unit suffixes ----------------------------------------------------------

    def _check_name(self, name: str, node: ast.AST, what: str) -> None:
        if name.startswith("_"):
            return
        suffix = name.rsplit("_", 1)[-1].lower() if "_" in name else None
        if suffix in BANNED_SUFFIXES:
            self._add(
                "unit-suffix",
                node,
                f"{what} `{name}` uses abbreviated unit `_{suffix}`; "
                f"spell it `_{BANNED_SUFFIXES[suffix]}`",
            )

    def _check_function(self, node) -> None:
        if not node.name.startswith("_"):
            args = node.args
            for arg in (
                list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
            ):
                self._check_name(arg.arg, arg, f"parameter of {node.name}()")
        self.generic_visit(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_function(node)

    def visit_Module(self, node: ast.Module) -> None:
        for stmt in node.body:
            targets: List[ast.expr] = []
            if isinstance(stmt, ast.Assign):
                targets = stmt.targets
            elif isinstance(stmt, ast.AnnAssign):
                targets = [stmt.target]
            for target in targets:
                if isinstance(target, ast.Name):
                    self._check_name(target.id, target, "module constant")
        self.generic_visit(node)
