"""Exporters: JSONL run files and Chrome trace-event JSON.

The JSONL format is the on-disk interchange for one run — one JSON object
per line, first a ``meta`` header, then ``span``/``event`` lines merged in
timestamp order, then one trailing ``metrics`` snapshot. Everything is
serialized with sorted keys and compact separators, so two identical runs
produce byte-identical files (the determinism tests rely on this).

``to_chrome_trace`` converts a hub or a loaded run into the Chrome
trace-event format (the JSON object form with ``traceEvents``), loadable
in ``chrome://tracing`` or Perfetto. Tracks map to threads — one per
rank/link/subsystem — with thread-name metadata so the UI labels them.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Union

from repro.errors import TelemetryError
from repro.telemetry.core import Span, TelemetryHub

#: Version stamp carried by the ``meta`` line; bump on breaking changes.
SCHEMA_VERSION = 1

#: Chrome trace pid used for every track (one simulated job = one process).
TRACE_PID = 1


def _dumps(obj: Any) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def _span_record(
    span: Span, record_type: str, labels: Optional[Dict[str, str]] = None
) -> Dict[str, Any]:
    record = {
        "type": record_type,
        "id": span.span_id,
        "parent": span.parent_id,
        "name": span.name,
        "cat": span.category,
        "track": span.track,
        "start": span.start,
        "end": span.end,
        "args": span.args,
    }
    if labels:
        record["labels"] = labels
    return record


def _ordered_records(hub: TelemetryHub) -> List[Dict[str, Any]]:
    # Hub labels are stamped onto every record; an unlabeled hub emits
    # byte-identical output to before labels existed (no empty key).
    labels = getattr(hub, "labels", None) or None
    entries = [(s.start, s.seq, _span_record(s, "span", labels)) for s in hub.tracer.spans]
    entries.extend(
        (e.start, e.seq, _span_record(e, "event", labels)) for e in hub.tracer.events
    )
    entries.sort(key=lambda item: (item[0], item[1]))
    return [record for _start, _seq, record in entries]


def ordered_records(hub: TelemetryHub) -> List[Dict[str, Any]]:
    """One hub's label-stamped span/event records in export order.

    The fleet merger interleaves several per-job hubs into one stream; it
    needs each hub's records exactly as :func:`to_jsonl` would emit them
    (same ordering, same label stamping) without the per-hub meta/metrics
    framing.
    """
    return _ordered_records(hub)


def to_jsonl(hub: TelemetryHub, clock: str = "sim") -> str:
    """Serialize one hub's collected run as JSONL text."""
    meta: Dict[str, Any] = {
        "type": "meta",
        "schema": SCHEMA_VERSION,
        "clock": clock,
        "spans": len(hub.tracer.spans),
        "events": len(hub.tracer.events),
    }
    labels = getattr(hub, "labels", None)
    if labels:
        meta["labels"] = labels
    lines = [_dumps(meta)]
    lines.extend(_dumps(record) for record in _ordered_records(hub))
    tail: Dict[str, Any] = {"type": "metrics", "metrics": hub.metrics.snapshot()}
    if labels:
        tail["labels"] = labels
    lines.append(_dumps(tail))
    return "\n".join(lines) + "\n"


def write_jsonl(hub: TelemetryHub, path: str, clock: str = "sim") -> str:
    """Write :func:`to_jsonl` output to ``path``; returns the path."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(to_jsonl(hub, clock=clock))
    return path


@dataclass
class TelemetryRun:
    """One parsed JSONL run: header, ordered records, metrics snapshot."""

    meta: Dict[str, Any] = field(default_factory=dict)
    spans: List[Dict[str, Any]] = field(default_factory=list)
    events: List[Dict[str, Any]] = field(default_factory=list)
    metrics: Dict[str, Any] = field(default_factory=dict)
    #: All span/event records in file order (the lint checks this order).
    records: List[Dict[str, Any]] = field(default_factory=list)


def parse_jsonl(text: str) -> TelemetryRun:
    """Parse JSONL text into a :class:`TelemetryRun`.

    Raises :class:`~repro.errors.TelemetryError` on malformed JSON; schema
    *content* problems are the ``--telemetry`` lint's job, so unknown
    record types are kept (in ``records``) rather than rejected here.
    """
    run = TelemetryRun()
    for line_no, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise TelemetryError(f"line {line_no}: invalid JSON: {exc}") from exc
        if not isinstance(record, dict):
            raise TelemetryError(f"line {line_no}: expected an object, got {type(record)}")
        kind = record.get("type")
        if kind == "meta" and not run.meta:
            run.meta = record
            continue
        if kind == "metrics":
            run.metrics = record.get("metrics", {})
            continue
        run.records.append(record)
        if kind == "span":
            run.spans.append(record)
        elif kind == "event":
            run.events.append(record)
    return run


def read_jsonl(path: str) -> TelemetryRun:
    """Load and parse a JSONL run file."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_jsonl(handle.read())


# -- Chrome trace-event JSON ------------------------------------------------------


def _track_ids(tracks: Iterable[str]) -> Dict[str, int]:
    """Deterministic track → tid mapping: sorted names, tid from 0."""
    return {name: tid for tid, name in enumerate(sorted(set(tracks)))}


#: Tolerance when matching a handoff's producer end to a consumer start.
_FLOW_TOL = 1e-9


def _link_parts(track: str) -> Optional[tuple]:
    link = track[len("link:"):] if track.startswith("link:") else track
    if "->" not in link:
        return None
    src, dst = link.split("->", 1)
    return src, dst


def _flow_events(
    records: List[Dict[str, Any]], tids: Dict[str, int]
) -> List[Dict[str, Any]]:
    """Flow (``ph: s``/``f``) pairs for cross-link chunk handoffs.

    Mirrors the critpath engine's inferred handoff rule: a chunk ``:send``
    span's producer is the latest-ending ``:send`` of the same (tag, unit,
    chunk) whose link destination is the consumer's source endpoint and
    which ended by the consumer's start. Each matched pair becomes one
    flow — an arrow in Perfetto from the producer slice's end to the
    consumer slice's start — with ids assigned in consumer record order,
    so same-seed runs stay byte-identical.
    """
    sends = []
    for record in records:
        if record.get("type") != "span" or record.get("cat") != "chunk":
            continue
        name = record.get("name", "")
        if not name.endswith(":send") or record.get("end") is None:
            continue
        args = record.get("args", {})
        chunk = int(args.get("chunk", -1))
        if chunk < 0:
            continue
        parts = _link_parts(record.get("track", ""))
        if parts is None:
            continue
        sends.append(
            (record, name[: -len(":send")], str(args.get("unit", "")), chunk, parts)
        )

    by_key: Dict[tuple, List[int]] = {}
    for index, (_record, tag, unit, chunk, _parts) in enumerate(sends):
        by_key.setdefault((tag, unit, chunk), []).append(index)

    events: List[Dict[str, Any]] = []
    flow_id = 0
    for index, (record, tag, unit, chunk, (src, _dst)) in enumerate(sends):
        start = float(record["start"])
        producers = [
            j
            for j in by_key[(tag, unit, chunk)]
            if j != index
            and sends[j][4][1] == src
            and float(sends[j][0]["end"]) <= start + _FLOW_TOL
        ]
        if not producers:
            continue
        producer = max(
            producers,
            key=lambda j: (float(sends[j][0]["end"]), float(sends[j][0]["start"]), j),
        )
        source = sends[producer][0]
        flow_id += 1
        common = {
            "name": "chunk-handoff",
            "cat": "flow",
            "pid": TRACE_PID,
            "id": flow_id,
            "args": {"chunk": chunk, "unit": unit},
        }
        events.append(
            dict(
                common,
                ph="s",
                tid=tids[source.get("track", "") or "main"],
                ts=float(source["end"]) * 1e6,
            )
        )
        events.append(
            dict(
                common,
                ph="f",
                bp="e",
                tid=tids[record.get("track", "") or "main"],
                ts=start * 1e6,
            )
        )
    return events


def to_chrome_trace(
    source: Union[TelemetryHub, TelemetryRun], clock: str = "sim"
) -> Dict[str, Any]:
    """Convert a hub or parsed run into a Chrome trace-event JSON object.

    Spans become complete (``"ph": "X"``) events, instants become
    ``"ph": "i"``; timestamps are microseconds as the format requires.
    Every track gets a ``thread_name`` metadata event so Perfetto shows
    one named row per rank/link, and every cross-link chunk handoff gets
    a flow (``"s"``/``"f"``) pair so Perfetto draws the arrow from the
    producing send to the consuming one (see :func:`_flow_events`).
    """
    if isinstance(source, TelemetryHub):
        records = _ordered_records(source)
    else:
        records = list(source.records)

    tids = _track_ids(r.get("track", "") or "main" for r in records)
    trace_events: List[Dict[str, Any]] = [
        {
            "ph": "M",
            "pid": TRACE_PID,
            "tid": 0,
            "name": "process_name",
            "args": {"name": f"repro ({clock} clock)"},
        }
    ]
    for track, tid in sorted(tids.items(), key=lambda item: item[1]):
        trace_events.append(
            {
                "ph": "M",
                "pid": TRACE_PID,
                "tid": tid,
                "name": "thread_name",
                "args": {"name": track},
            }
        )
        trace_events.append(
            {
                "ph": "M",
                "pid": TRACE_PID,
                "tid": tid,
                "name": "thread_sort_index",
                "args": {"sort_index": tid},
            }
        )

    for record in records:
        if record.get("type") not in ("span", "event"):
            continue
        track = record.get("track", "") or "main"
        base = {
            "name": record.get("name", ""),
            "cat": record.get("cat", "") or "repro",
            "pid": TRACE_PID,
            "tid": tids[track],
            "ts": float(record["start"]) * 1e6,
            "args": dict(record.get("args", {}), span_id=record.get("id")),
        }
        end = record.get("end")
        if record["type"] == "event" or end == record["start"]:
            trace_events.append(dict(base, ph="i", s="t"))
        elif end is None:
            # An unclosed span still renders as a begin marker rather than
            # silently vanishing from the timeline.
            trace_events.append(dict(base, ph="B"))
        else:
            duration = (float(end) - float(record["start"])) * 1e6
            trace_events.append(dict(base, ph="X", dur=duration))

    trace_events.extend(_flow_events(records, tids))
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {"schema": SCHEMA_VERSION, "clock": clock},
    }


def write_chrome_trace(
    source: Union[TelemetryHub, TelemetryRun],
    path: str,
    clock: str = "sim",
) -> str:
    """Write a Chrome trace JSON for ``source`` to ``path``."""
    payload = to_chrome_trace(source, clock=clock)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, sort_keys=True, separators=(",", ":"))
        handle.write("\n")
    return path


def summarize_collectives(run: TelemetryRun) -> List[Dict[str, Any]]:
    """Per-collective latency rows from a run's ``collective`` spans."""
    grouped: Dict[str, List[float]] = {}
    for span in run.spans:
        if span.get("cat") != "collective" or span.get("end") is None:
            continue
        grouped.setdefault(span["name"], []).append(span["end"] - span["start"])
    rows = []
    for name in sorted(grouped):
        durations = grouped[name]
        rows.append(
            {
                "name": name,
                "count": len(durations),
                "mean_seconds": sum(durations) / len(durations),
                "min_seconds": min(durations),
                "max_seconds": max(durations),
            }
        )
    return rows


def summarize_slowest(run: TelemetryRun, top: int = 5) -> List[Dict[str, Any]]:
    """The ``top`` slowest closed spans of each span kind (category).

    Rows come out grouped by kind (sorted), slowest first within a group,
    with deterministic tiebreaks (start, then span id) so the same run
    always tabulates identically.
    """
    by_kind: Dict[str, List[Dict[str, Any]]] = {}
    for span in run.spans:
        end = span.get("end")
        if end is None:
            continue
        by_kind.setdefault(span.get("cat", "") or "uncategorized", []).append(span)
    rows: List[Dict[str, Any]] = []
    for kind in sorted(by_kind):
        ordered = sorted(
            by_kind[kind],
            key=lambda s: (-(s["end"] - s["start"]), s["start"], s.get("id", "")),
        )
        for span in ordered[: max(0, top)]:
            rows.append(
                {
                    "kind": kind,
                    "name": span.get("name", ""),
                    "track": span.get("track", ""),
                    "start_seconds": span["start"],
                    "duration_seconds": span["end"] - span["start"],
                }
            )
    return rows


def summarize_links(run: TelemetryRun) -> List[Dict[str, Any]]:
    """Per-link busy time and bytes from ``link:*`` track spans."""
    busy: Dict[str, float] = {}
    moved: Dict[str, float] = {}
    horizon = 0.0
    for span in run.spans:
        end: Optional[float] = span.get("end")
        if end is not None:
            horizon = max(horizon, end)
        track = span.get("track", "")
        if not track.startswith("link:") or end is None:
            continue
        busy[track] = busy.get(track, 0.0) + (end - span["start"])
        moved[track] = moved.get(track, 0.0) + float(span.get("args", {}).get("bytes", 0.0))
    rows = []
    for track in sorted(busy):
        rows.append(
            {
                "link": track[len("link:"):],
                "busy_seconds": busy[track],
                "bytes": moved[track],
                "utilization": busy[track] / horizon if horizon > 0 else 0.0,
            }
        )
    return rows
