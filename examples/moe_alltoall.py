"""Mixture-of-Experts token dispatch with AlltoAll (paper Sec. VI-D, MoE).

The paper's MoE workload (fastMoE, one expert per GPU, two linear layers)
replaces NCCL P2P with ``adapcc.alltoall()`` for token dispatching. This
example runs the dispatch/combine AlltoAll pair on a simulated cluster,
verifies the token routing end to end, and compares AdapCC's AlltoAll
against the NCCL-style send/recv baseline.

Run:  python examples/moe_alltoall.py
"""

import numpy as np

from repro import AdapCCSession, Primitive
from repro.bench.harness import BenchEnvironment
from repro.hardware import MB, make_homo_cluster


def main() -> None:
    world = 8
    tokens_per_pair = 64  # tokens each worker routes to each expert
    length = world * tokens_per_pair

    print("== MoE token dispatch on 2x4xA100 (one expert per GPU) ==\n")
    session = AdapCCSession(make_homo_cluster(num_servers=2)).init()
    session.setup()

    # Each worker's tokens, grouped by destination expert (block layout).
    rng = np.random.default_rng(0)
    tokens = {rank: rng.standard_normal(length) for rank in range(world)}

    # Dispatch: expert e receives every worker's block e.
    scale = 64 * MB / (length * 8)
    dispatch = session.alltoall(tokens, byte_scale=scale)
    print(f"dispatch AlltoAll (64 MB scaled): {dispatch.duration * 1e3:.2f} ms")

    # 'Expert computation': each expert transforms the tokens it received.
    processed = {rank: dispatch.outputs[rank] * 2.0 for rank in range(world)}

    # Combine: tokens return to their source workers.
    combine = session.alltoall(processed, byte_scale=scale)
    print(f"combine  AlltoAll (64 MB scaled): {combine.duration * 1e3:.2f} ms")

    # End-to-end check: every token came back doubled, in place.
    for rank in range(world):
        np.testing.assert_allclose(combine.outputs[rank], tokens[rank] * 2.0)
    print("token routing verified: combine(expert(dispatch(x))) == 2x\n")

    # Compare against NCCL's P2P-based AlltoAll.
    env = BenchEnvironment(make_homo_cluster(num_servers=2), "nccl")
    nccl = env.backend.plan_and_run(Primitive.ALLTOALL, tokens, env.ranks)
    # Scale NCCL's duration measurement to the same simulated volume.
    strategy = env.backend.plan(Primitive.ALLTOALL, 64 * MB, env.ranks)
    nccl_scaled = env.backend.run(strategy, tokens, byte_scale=scale)
    print(f"NCCL send/recv AlltoAll:          {nccl_scaled.duration * 1e3:.2f} ms")
    print(f"AdapCC speedup: {nccl_scaled.duration / dispatch.duration:.2f}x "
          "(paper Fig. 13: +31 % on average)")


if __name__ == "__main__":
    main()
