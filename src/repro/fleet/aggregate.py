"""Fleet aggregation: per-job goodput, fairness, contention, attribution.

:class:`FleetAggregator` folds the runner's per-job outcomes into one
deterministic fleet report:

* **goodput** — payload bytes completed per second of job makespan;
* **fairness** — Jain's index over the jobs' goodputs
  (``(Σx)² / (n·Σx²)``, 1 at perfect equality, 1/n at total capture);
* **contention timelines** — per physical link, the seconds during which
  two or more jobs' chunk transfers overlapped, and which jobs ever
  touched the link;
* **attribution accuracy** — the runner's cross-job interference
  attributions scored against the workload generator's ground truth:
  a prediction is correct iff its (victim, aggressor) pair matches a
  planted window and its evidence window overlaps that window (extended
  to the aggressor's actual last-op completion, since traffic launched
  inside the window keeps flowing past its nominal end).

Everything is pure arithmetic over already-collected data — no simulator,
no randomness — so the report is byte-stable for byte-identical inputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import FleetError

#: Overlap below this (seconds) is numerical noise, not contention.
OVERLAP_TOL = 1e-9


def jain_index(values: Sequence[float]) -> float:
    """Jain's fairness index over non-negative allocations."""
    if not values:
        raise FleetError("fairness index needs at least one allocation")
    if any(value < 0 for value in values):
        raise FleetError("allocations must be non-negative")
    total = float(sum(values))
    squares = float(sum(value * value for value in values))
    if squares == 0.0:
        return 1.0  # all-zero: degenerate but perfectly equal
    return (total * total) / (len(values) * squares)


def _merge_intervals(intervals: List[Tuple[float, float]]) -> List[Tuple[float, float]]:
    """Coalesce possibly-overlapping [start, end) intervals."""
    merged: List[Tuple[float, float]] = []
    for start, end in sorted(intervals):
        if merged and start <= merged[-1][1] + OVERLAP_TOL:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return merged


def overlap_seconds(
    intervals: Sequence[Tuple[float, float]], window: Tuple[float, float]
) -> float:
    """Total length of ``intervals ∩ window`` (intervals may overlap)."""
    start, end = window
    clipped = [
        (max(lo, start), min(hi, end))
        for lo, hi in intervals
        if min(hi, end) - max(lo, start) > OVERLAP_TOL
    ]
    return sum(hi - lo for lo, hi in _merge_intervals(clipped))


@dataclass(frozen=True)
class JobSummary:
    """One job's replay outcome, as the runner measured it."""

    name: str
    ranks: Tuple[int, ...]
    ops_total: int
    ops_completed: int
    bytes_completed: float
    first_launch: float
    last_finish: float
    verdicts: int
    reprobes: int
    resyntheses: int

    @property
    def makespan(self) -> float:
        """Wall time from first launch to last completion."""
        return max(0.0, self.last_finish - self.first_launch)

    @property
    def goodput(self) -> float:
        """Payload bytes per second over the job's makespan."""
        if self.makespan <= 0:
            return 0.0
        return self.bytes_completed / self.makespan


@dataclass(frozen=True)
class FleetAttribution:
    """One cross-job interference attribution the runner produced."""

    victim: str
    aggressor: str
    link: str
    verdict_id: str
    kind: str
    iteration: int
    window_start: float
    window_end: float
    overlap_seconds: float

    def to_record(self) -> Dict:
        return {
            "victim": self.victim,
            "aggressor": self.aggressor,
            "link": self.link,
            "verdict": self.verdict_id,
            "kind": self.kind,
            "iteration": self.iteration,
            "window_start": self.window_start,
            "window_end": self.window_end,
            "overlap_seconds": self.overlap_seconds,
        }


@dataclass(frozen=True)
class ScoringWindow:
    """A ground-truth window widened to the aggressor's real traffic end."""

    victim: str
    aggressor: str
    start: float
    end: float

    def matches(self, attribution: FleetAttribution) -> bool:
        return (
            attribution.victim == self.victim
            and attribution.aggressor == self.aggressor
            and attribution.window_start <= self.end + OVERLAP_TOL
            and attribution.window_end >= self.start - OVERLAP_TOL
        )


def score_attributions(
    attributions: Sequence[FleetAttribution],
    truths: Sequence[ScoringWindow],
) -> Optional[Dict]:
    """Precision/recall of the attributions against planted ground truth.

    Returns ``None`` when the workload planted nothing (generated traces:
    emergent overlap has no labels to score against).
    """
    if not truths:
        return None
    correct = sum(
        1
        for attribution in attributions
        if any(truth.matches(attribution) for truth in truths)
    )
    covered = sum(
        1
        for truth in truths
        if any(truth.matches(attribution) for attribution in attributions)
    )
    predictions = len(attributions)
    return {
        "predictions": predictions,
        "correct": correct,
        "truths": len(truths),
        "covered": covered,
        "precision": correct / predictions if predictions else 0.0,
        "recall": covered / len(truths),
    }


class FleetAggregator:
    """Folds per-job outcomes into one deterministic fleet report."""

    def __init__(
        self,
        summaries: Sequence[JobSummary],
        occupancy: Dict[str, Dict[str, List[Tuple[float, float]]]],
        attributions: Sequence[FleetAttribution],
        truths: Sequence[ScoringWindow] = (),
        seed: int = 0,
    ):
        if not summaries:
            raise FleetError("aggregation needs at least one job summary")
        self.summaries = sorted(summaries, key=lambda summary: summary.name)
        #: job name -> link name -> busy intervals of that job on the link.
        self.occupancy = occupancy
        self.attributions = list(attributions)
        self.truths = list(truths)
        self.seed = seed

    def contention(self) -> Dict[str, Dict]:
        """Per-link multi-job contention: seconds with ≥2 jobs active."""
        links: Dict[str, Dict[str, List[Tuple[float, float]]]] = {}
        for job, per_link in self.occupancy.items():
            for link, intervals in per_link.items():
                if intervals:
                    links.setdefault(link, {})[job] = _merge_intervals(list(intervals))
        report = {}
        for link in sorted(links):
            per_job = links[link]
            boundaries = sorted(
                {t for intervals in per_job.values() for pair in intervals for t in pair}
            )
            contended = 0.0
            for lo, hi in zip(boundaries, boundaries[1:]):
                mid = (lo + hi) / 2.0
                active = sum(
                    1
                    for intervals in per_job.values()
                    if any(start <= mid < end for start, end in intervals)
                )
                if active >= 2:
                    contended += hi - lo
            report[link] = {
                "jobs": sorted(per_job),
                "contended_seconds": contended,
            }
        return report

    def fairness(self) -> Dict:
        """Jain's index over the jobs' goodputs."""
        goodputs = [summary.goodput for summary in self.summaries]
        return {
            "jain": jain_index(goodputs),
            "n": len(goodputs),
            "lower_bound": 1.0 / len(goodputs),
        }

    def report(self) -> Dict:
        """The full fleet report (JSON-ready, deterministic)."""
        return {
            "schema": 1,
            "seed": self.seed,
            "jobs": {
                summary.name: {
                    "ranks": list(summary.ranks),
                    "ops_total": summary.ops_total,
                    "ops_completed": summary.ops_completed,
                    "bytes_completed": summary.bytes_completed,
                    "first_launch": summary.first_launch,
                    "last_finish": summary.last_finish,
                    "makespan": summary.makespan,
                    "goodput": summary.goodput,
                    "verdicts": summary.verdicts,
                    "reprobes": summary.reprobes,
                    "resyntheses": summary.resyntheses,
                }
                for summary in self.summaries
            },
            "fairness": self.fairness(),
            "contention": self.contention(),
            "attributions": [a.to_record() for a in self.attributions],
            "accuracy": score_attributions(self.attributions, self.truths),
        }
