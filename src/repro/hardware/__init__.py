"""Cluster hardware models: GPUs, instances, links, and testbed presets.

The classes here are *descriptive* — they say what the hardware is. The
:class:`repro.hardware.cluster.Cluster` turns the description into concrete
:class:`repro.simulation.fluid.FluidLink` objects that the runtime moves
data across.
"""

from repro.hardware.links import (
    GB,
    GiB,
    KB,
    MB,
    LinkSpec,
    LinkType,
    NicSpec,
    gbps,
    GBps,
    us,
    ms,
)
from repro.hardware.gpu import GPU, GpuSpec
from repro.hardware.instance import Instance, InstanceSpec
from repro.hardware.cluster import Cluster
from repro.hardware.presets import (
    A100_GPU,
    V100_GPU,
    a100_server,
    make_paper_testbed,
    make_hetero_cluster,
    make_homo_cluster,
    v100_server,
)

__all__ = [
    "A100_GPU",
    "Cluster",
    "GB",
    "GBps",
    "GiB",
    "GPU",
    "GpuSpec",
    "Instance",
    "InstanceSpec",
    "KB",
    "LinkSpec",
    "LinkType",
    "MB",
    "NicSpec",
    "V100_GPU",
    "a100_server",
    "gbps",
    "make_hetero_cluster",
    "make_homo_cluster",
    "make_paper_testbed",
    "ms",
    "us",
    "v100_server",
]
