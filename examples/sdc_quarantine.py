"""Silent data corruption: injected, detected, localized, quarantined.

The canonical data-plane integrity scenario. A 3x2xA100 training job
iterates an adaptive AllReduce while a seeded
:class:`~repro.chaos.plan.CorruptionFault` silently flips mantissa bits
in payloads crossing one inter-server link — at the *kernel* site, i.e.
after the receiver's CRC32 check, so no per-hop checksum ever fires.
The integrity layer

1. catches the corruption within the same iteration via the
   end-of-collective digest exchange (every output's linear digest must
   equal the sum of the contributors' input digests),
2. localizes the guilty link with binary-search probe rounds — seeded
   known payloads through the same data-plane tap, narrowed within
   ``ceil(log2(#implicated links))`` rounds,
3. convicts it on the repeat-offender ledger, quarantines its capacity
   in the topology, re-synthesizes the strategy through the two-phase
   control plane (three servers offer a detour), and
4. retries the corrupted iterations, so the final tensors are
   bitwise-equal to the fault-free run of the same seed.

Every step lands in the integrity log, exported to
``sdc_quarantine.jsonl`` and lintable with
``python -m repro.analysis --integrity sdc_quarantine.jsonl``.

Run:  python examples/sdc_quarantine.py
"""

import numpy as np

from repro.chaos import ChaosRunner, FaultPlan
from repro.hardware import make_homo_cluster
from repro.integrity import SITE_KERNEL, IntegrityConfig

SEED = 11
ITERATIONS = 6
LINK = "n0->n1"


def main() -> None:
    print("== Silent data corruption, quarantined and healed ==\n")
    # Three servers: the NIC mesh offers a detour around the link the
    # integrity layer is about to quarantine.
    specs = make_homo_cluster(num_servers=3, gpus_per_server=2)
    plan = FaultPlan.corruption(
        seed=SEED, iterations=ITERATIONS, link=LINK, rate=0.6, site=SITE_KERNEL
    )
    fault = plan.corruptions[0]
    print(
        f"hidden fault: {fault.link} flips a high mantissa bit in "
        f"{fault.rate:.0%} of transmissions, at the {fault.site} site "
        "(past every per-hop checksum)\n"
    )

    report = ChaosRunner(
        specs, plan, length=512, integrity=IntegrityConfig()
    ).run()

    import json

    records = [json.loads(line) for line in report.integrity_log.splitlines()]
    for record in records:
        kind = record["type"]
        if kind == "digest-mismatch":
            print(
                f"iteration {record['iteration']}: rank {record['rank']} "
                f"digest {record['observed']:.1f} != expected "
                f"{record['expected']:.1f}"
            )
        elif kind == "probe-round":
            print(
                f"  probe round {record['round']}: "
                f"{len(record['probed_links'])} link(s) probed, "
                f"dirty: {record['dirty_links'] or 'none'}"
            )
        elif kind == "localization" and record["link"]:
            print(
                f"  localized to {record['link']} in {record['rounds']} "
                f"round(s) over {record['candidates']} candidate(s) "
                f"(bound: within={record['within_bound']})"
            )
        elif kind == "conviction":
            print(
                f"convicted {record['link']} "
                f"(suspicion {record['suspicion']})"
            )
        elif kind == "quarantine":
            print(f"quarantined {record['link']}: capacity masked")
        elif kind == "integrity-resynthesis":
            print("re-synthesized the strategy around the quarantine\n")

    reference = ChaosRunner(
        specs, FaultPlan(seed=SEED, iterations=ITERATIONS), length=512
    ).run()
    identical = all(
        np.array_equal(tensor, reference.final_outputs()[rank])
        for rank, tensor in report.final_outputs().items()
    )
    print(f"convicted links: {report.convictions}")
    print(f"quarantined: {report.quarantined_links}")
    print(f"every iteration bitwise exact: {report.all_exact}")
    print(f"final tensors identical to the fault-free run: {identical}")

    path = "sdc_quarantine.jsonl"
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(report.integrity_log)
    print(f"\nintegrity log written to {path}")
    print(f"lint it:  python -m repro.analysis --integrity {path}")


if __name__ == "__main__":
    main()
