"""Tests for elastic scaling: attaching instances mid-job (Sec. IV-A)."""

import numpy as np
import pytest

from repro import AdapCCSession
from repro.errors import TopologyError
from repro.hardware import Cluster, a100_server, make_homo_cluster, v100_server
from repro.simulation import Simulator


class TestClusterAddInstance:
    def test_ranks_continue_sequentially(self):
        sim = Simulator()
        cluster = Cluster(sim, make_homo_cluster(num_servers=2))
        cluster.add_instance(a100_server(name="late"))
        assert cluster.world_size == 12
        assert cluster.ranks_on_instance(2) == [8, 9, 10, 11]

    def test_new_instance_links_exist(self):
        sim = Simulator()
        cluster = Cluster(sim, make_homo_cluster(num_servers=2))
        cluster.add_instance(a100_server(name="late"))
        assert cluster.nvlink(8, 9) is not None
        assert cluster.nic_egress(2) is not None
        path = cluster.gpu_path(0, 8)
        assert "nic-out" in path[0].name and "nic-in" in path[-1].name

    def test_transfer_to_new_instance_works(self):
        sim = Simulator()
        cluster = Cluster(sim, make_homo_cluster(num_servers=2))
        cluster.add_instance(v100_server(name="late"))
        done = cluster.network.transfer(cluster.gpu_path(0, 8), 5e9)
        sim.run_until_complete(done)
        assert sim.now > 0


class TestSessionScaleOut:
    def test_scale_out_extends_collectives(self):
        session = AdapCCSession(make_homo_cluster(num_servers=2)).init()
        tensors = {rank: np.full(128, 1.0) for rank in range(8)}
        result = session.allreduce(tensors)
        np.testing.assert_array_equal(result.outputs[0], np.full(128, 8.0))

        new_ranks = session.scale_out(a100_server(name="late"))
        assert new_ranks == [8, 9, 10, 11]
        tensors = {rank: np.full(128, 1.0) for rank in range(12)}
        result = session.allreduce(tensors)
        np.testing.assert_array_equal(result.outputs[11], np.full(128, 12.0))

    def test_scale_out_redetects_and_reprofiles(self):
        session = AdapCCSession(make_homo_cluster(num_servers=2)).init()
        session.scale_out(v100_server(name="late"))
        assert len(session.detection.instances) == 3
        assert session.profiler.passes_completed == 1  # fresh profiler, one pass
        from repro.topology.graph import nic_node

        edge = session.topology.edge(nic_node(0), nic_node(2))
        assert edge.estimate is not None  # new links profiled

    def test_scale_out_with_hetero_addition_keeps_roots_fast(self):
        """A slow server joining must not attract sub-collective roots."""
        session = AdapCCSession(make_homo_cluster(num_servers=2)).init()
        session.scale_out(v100_server(name="late"))
        tensors = {rank: np.ones(256) for rank in range(12)}
        session.allreduce(tensors, byte_scale=1000.0)
        strategy = next(iter(session._strategies.values()))
        for sc in strategy.subcollectives:
            assert sc.root.index < 8  # roots stay on the A100 servers

    def test_scale_out_before_init_rejected(self):
        from repro.errors import ReproError

        session = AdapCCSession(make_homo_cluster(num_servers=2))
        with pytest.raises(ReproError):
            session.scale_out(a100_server(name="late"))
