# ruff: noqa
"""Seeded hazard: same-timestamp heap entries without a tiebreak key.

Two events pushed at the same simulated time compare by payload —
an unstable order at best, a TypeError at worst. The fixed form pushes a
monotonic sequence number between timestamp and payload.
"""

import heapq


def enqueue(queue, when, event):
    heapq.heappush(queue, (when, event))  # HAZARD: no tiebreak element


def enqueue_fixed(queue, when, seq, event):
    heapq.heappush(queue, (when, seq, event))  # keyed: must NOT be flagged
