"""Structural lint over integrity logs (the ``--integrity`` pass's core).

An :class:`~repro.integrity.monitor.IntegrityLog` narrates the whole
detect→localize→convict→quarantine→re-synthesize chain; this lint checks
the narration is causally coherent:

* the log opens with its config record and timestamps never regress;
* every localization respects the ``max(1, ceil(log2 n))`` probe-round
  bound, and a conclusive one names a link some probe round actually saw
  dirty — conviction evidence is *direct*, never by elimination;
* every suspicion cites evidence that exists (a checksum failure or a
  localization naming the link), every conviction sits on at least the
  configured threshold of suspicions, and every quarantine follows a
  conviction and drives a re-synthesis (and vice versa);
* the summary's checksum coverage is total: with checksums on, every
  traffic unit that crossed the tap was verified.
"""

from __future__ import annotations

import json
from typing import Dict, List, Sequence

from repro.analysis.verify_strategy import Violation
from repro.integrity.localize import probe_round_bound
from repro.integrity.monitor import (
    CHECKSUM_RECORD,
    CONFIG_RECORD,
    CONVICTION_RECORD,
    DIGEST_RECORD,
    LOCALIZATION_RECORD,
    PROBE_ROUND_RECORD,
    QUARANTINE_RECORD,
    RESYNTHESIS_RECORD,
    RETRY_RECORD,
    SUMMARY_RECORD,
    SUSPICION_RECORD,
)

#: Required fields per record type.
_SCHEMA: Dict[str, tuple] = {
    CONFIG_RECORD: ("checksums", "digests", "conviction_threshold", "quarantine"),
    CHECKSUM_RECORD: ("time", "iteration", "link", "chunk"),
    DIGEST_RECORD: ("time", "iteration", "rank", "site", "expected", "observed"),
    PROBE_ROUND_RECORD: ("time", "iteration", "round", "probed_links", "dirty_links"),
    LOCALIZATION_RECORD: (
        "time", "iteration", "candidates", "rounds", "probes", "within_bound",
    ),
    SUSPICION_RECORD: ("time", "iteration", "link", "count", "evidence"),
    CONVICTION_RECORD: ("time", "iteration", "link", "suspicion"),
    QUARANTINE_RECORD: ("time", "iteration", "link"),
    RESYNTHESIS_RECORD: ("time", "iteration", "link"),
    RETRY_RECORD: ("time", "iteration", "attempt"),
    SUMMARY_RECORD: ("time", "units_seen", "units_verified", "convicted"),
}


def lint_integrity_records(records: Sequence[dict]) -> List[Violation]:
    """Check one integrity log's records for causal coherence."""
    violations: List[Violation] = []
    if not records:
        return [Violation("integrity-header", "log", "log is empty")]
    if records[0].get("type") != CONFIG_RECORD:
        violations.append(
            Violation(
                "integrity-header",
                "log",
                f"log must open with {CONFIG_RECORD!r}, found "
                f"{records[0].get('type')!r}",
            )
        )

    last_time = float("-inf")
    threshold = 1
    checksums_on = digests_on = quarantine_on = True
    #: links with a checksum failure / a conclusive localization so far.
    checksum_links: set = set()
    localized_links: set = set()
    #: link -> suspicion records seen so far.
    suspicions: Dict[str, int] = {}
    convicted: List[str] = []
    quarantined: List[str] = []
    resynthesized: List[str] = []
    #: dirty links of probe rounds since the last localization record.
    window_dirty: set = set()

    for index, record in enumerate(records):
        kind = record.get("type")
        subject = f"record{index}"
        if kind not in _SCHEMA:
            violations.append(
                Violation("integrity-kind", subject, f"unknown record type {kind!r}")
            )
            continue
        missing = [f for f in _SCHEMA[kind] if f not in record]
        if missing:
            violations.append(
                Violation(
                    "integrity-record",
                    subject,
                    f"{kind} record missing fields {missing}",
                )
            )
            continue
        if kind == CONFIG_RECORD:
            threshold = int(record["conviction_threshold"])
            checksums_on = bool(record["checksums"])
            digests_on = bool(record["digests"])
            quarantine_on = bool(record["quarantine"])
            continue
        time = float(record["time"])
        if time < last_time:
            violations.append(
                Violation(
                    "integrity-monotonic",
                    subject,
                    f"{kind} at t={time} regresses behind t={last_time}",
                )
            )
        last_time = time

        if kind == CHECKSUM_RECORD:
            if not checksums_on:
                violations.append(
                    Violation(
                        "integrity-record", subject,
                        "checksum failure logged with checksums disabled",
                    )
                )
            checksum_links.add(record["link"])
        elif kind == DIGEST_RECORD:
            if not digests_on:
                violations.append(
                    Violation(
                        "integrity-record", subject,
                        "digest mismatch logged with digests disabled",
                    )
                )
        elif kind == PROBE_ROUND_RECORD:
            window_dirty.update(record["dirty_links"])
        elif kind == LOCALIZATION_RECORD:
            bound = probe_round_bound(int(record["candidates"]))
            if int(record["rounds"]) > bound or not record["within_bound"]:
                violations.append(
                    Violation(
                        "integrity-probe-bound",
                        subject,
                        f"localization used {record['rounds']} round(s) over "
                        f"{record['candidates']} candidate(s); bound is {bound}",
                    )
                )
            link = record.get("link")
            if link is not None:
                if link not in window_dirty:
                    violations.append(
                        Violation(
                            "integrity-conviction-evidence",
                            subject,
                            f"localization named {link} but no probe round "
                            "saw its probe dirty (conviction by elimination)",
                        )
                    )
                localized_links.add(link)
            window_dirty = set()
        elif kind == SUSPICION_RECORD:
            link = record["link"]
            evidence = record["evidence"]
            backed = (
                link in checksum_links
                if evidence == "checksum"
                else link in localized_links
            )
            if not backed:
                violations.append(
                    Violation(
                        "integrity-conviction-evidence",
                        subject,
                        f"suspicion of {link} cites {evidence!r} evidence "
                        "that the log does not contain",
                    )
                )
            suspicions[link] = suspicions.get(link, 0) + 1
        elif kind == CONVICTION_RECORD:
            link = record["link"]
            if suspicions.get(link, 0) < threshold:
                violations.append(
                    Violation(
                        "integrity-conviction-evidence",
                        subject,
                        f"conviction of {link} with "
                        f"{suspicions.get(link, 0)} suspicion(s); threshold "
                        f"is {threshold}",
                    )
                )
            convicted.append(link)
        elif kind == QUARANTINE_RECORD:
            link = record["link"]
            if link not in convicted:
                violations.append(
                    Violation(
                        "integrity-quarantine",
                        subject,
                        f"quarantine of {link} without a conviction",
                    )
                )
            if not quarantine_on:
                violations.append(
                    Violation(
                        "integrity-quarantine", subject,
                        "quarantine logged with quarantine disabled",
                    )
                )
            quarantined.append(link)
        elif kind == RESYNTHESIS_RECORD:
            link = record["link"]
            if link not in quarantined:
                violations.append(
                    Violation(
                        "integrity-quarantine",
                        subject,
                        f"integrity re-synthesis for {link} without its "
                        "quarantine",
                    )
                )
            resynthesized.append(link)
        elif kind == SUMMARY_RECORD:
            if checksums_on and record["units_verified"] != record["units_seen"]:
                violations.append(
                    Violation(
                        "integrity-coverage",
                        subject,
                        f"checksum coverage is partial: "
                        f"{record['units_verified']}/{record['units_seen']} "
                        "traffic units verified",
                    )
                )
            if sorted(record["convicted"]) != sorted(convicted):
                violations.append(
                    Violation(
                        "integrity-record",
                        subject,
                        "summary's convicted list disagrees with the "
                        "conviction records",
                    )
                )

    # Quarantine must *drive* re-synthesis, not just precede nothing.
    for link in quarantined:
        if link not in resynthesized:
            violations.append(
                Violation(
                    "integrity-quarantine",
                    f"link:{link}",
                    "quarantined link never drove a re-synthesis",
                )
            )
    return violations


def lint_integrity_file(path: str) -> List[Violation]:
    """Parse and lint an integrity log exported as JSONL."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            lines = [line for line in handle.read().splitlines() if line.strip()]
        records = [json.loads(line) for line in lines]
    except (OSError, ValueError) as exc:
        return [Violation("integrity-io", path, f"unreadable integrity log: {exc}")]
    return lint_integrity_records(records)
