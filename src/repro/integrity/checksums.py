"""Checksum and digest primitives for the data-plane integrity layer.

Two complementary fingerprints, chosen for what each check can *honestly*
observe:

* :func:`payload_checksum` — CRC32 over the raw payload bytes. Stamped by
  the sender and re-computed by the receiver of every hop, it detects any
  byte change on the wire (CRC32 catches all single-bit flips). It cannot
  see corruption that happens *after* verification — e.g. in the receive
  buffer an aggregation kernel later reads — because downstream hops will
  checksum the already-corrupted bytes and agree with themselves.
* :func:`payload_digest` — the elementwise sum of the payload, a *linear*
  digest. Linearity is what makes the end-of-collective exchange work:
  an AllReduce output is the elementwise sum of the contributors'
  inputs, so its digest must equal the sum of their input digests, in
  any association order. Each rank only needs its own input's scalar
  digest and the shared output — no oracle reference tensor — and the
  check closes over the whole reduce/broadcast pipeline, aggregation
  kernels included.

Float addition is not associative, so the digest comparison takes a
relative tolerance (:data:`DIGEST_RTOL`): association-order noise is
``~1e-16`` relative, while the corruption modes the chaos layer injects
(high-mantissa bit flips, scaled payloads) move values by percents.
Integer-valued float64 tensors — the chaos conformance substrate — match
exactly.
"""

from __future__ import annotations

import zlib

import numpy as np

#: Default relative tolerance of the digest comparison: far above float
#: association noise, far below any injected corruption's displacement.
DIGEST_RTOL = 1e-9


def payload_checksum(payload: np.ndarray) -> int:
    """CRC32 over the payload's bytes (dtype- and order-normalized)."""
    return zlib.crc32(np.ascontiguousarray(payload).tobytes())


def payload_digest(payload: np.ndarray) -> float:
    """The linear (elementwise-sum) digest of a payload."""
    return float(np.asarray(payload, dtype=np.float64).sum())


def digests_match(expected: float, observed: float, rtol: float = DIGEST_RTOL) -> bool:
    """Whether two digests agree up to float association noise."""
    scale = max(abs(expected), abs(observed), 1.0)
    return abs(expected - observed) <= rtol * scale
