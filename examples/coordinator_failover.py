"""Coordinator failover: crash the control plane, keep the arithmetic.

The paper pins the relay coordinator on rank 0 and only recovers from
*worker* faults; the coordinator itself is a single point of failure.
This walkthrough exercises the recovery control plane that removes it:

1. the acting coordinator's role is crashed mid-decision — its lease
   lapses, the lowest-ranked live worker takes over under the next epoch,
   replays the journal, and resumes the in-flight iteration;
2. a second crash lands between a strategy transition's prepare and
   commit — the successor rolls the orphaned proposal back to the last
   committed strategy before re-running the install under its own epoch;
3. a control-channel partition isolates the new coordinator — another
   election, and the deposed leader's post-heal message is *fenced*
   (dropped and counted), which is how split-brain resolves.

Throughout, the tensors never notice: coordinator faults live purely on
the control plane, so every iteration stays bitwise identical to the
fault-free run — compared below, output for output.

Run:  python examples/coordinator_failover.py

The journal the run leaves behind is lintable evidence:
``python -m repro.analysis --recovery`` replays a scenario like this one
in CI and checks the same safety contract this script prints.
"""

import numpy as np

from repro.analysis.lint_recovery import lint_recovery
from repro.chaos import ChaosRunner, CoordinatorCrashFault, FaultPlan, PartitionFault
from repro.hardware import make_homo_cluster


def main() -> None:
    print("== Coordinator failover on 2x4xA100, 5 iterations ==\n")
    specs = make_homo_cluster(num_servers=2, gpus_per_server=4)

    plan = FaultPlan(
        seed=17,
        iterations=5,
        coordinator_crashes=(
            CoordinatorCrashFault(iteration=1, phase="decide"),
            CoordinatorCrashFault(iteration=2, phase="transition"),
        ),
        partitions=(PartitionFault(ranks=(0,), iteration=3, heal_iteration=4),),
    )
    baseline = ChaosRunner(specs, FaultPlan(seed=17, iterations=5), length=2048).run()
    runner = ChaosRunner(specs, plan, length=2048)
    report = runner.run()

    for outcome in report.iterations:
        crash = plan.coordinator_crash_at(outcome.iteration)
        note = f"  (coordinator role crashed: {crash.phase} phase)" if crash else ""
        print(
            f"iter {outcome.iteration}: epoch {outcome.epoch}, "
            f"coordinator rank {outcome.coordinator}, exact={outcome.exact}{note}"
        )

    print(
        f"\nelections: {report.elections}; fenced stale messages: "
        f"{report.fenced_messages}; rollbacks: {report.rollbacks}; "
        f"journal records replayed at takeovers: {report.replayed_records}"
    )

    outputs_equal = all(
        np.array_equal(report.final_outputs()[rank], tensor)
        for rank, tensor in baseline.final_outputs().items()
    )
    print(
        f"bit-identical to the fault-free run: {outputs_equal}; "
        f"all iterations exact: {report.all_exact}"
    )

    log = runner.control_plane.log
    violations = lint_recovery(log)
    print(
        f"journal: {len(log)} records, {len(log.checkpoints)} checkpoint(s); "
        f"recovery lint violations: {len(violations)}"
    )

    print("\ncontrol-plane journal (elections and transitions):")
    for record in log.records:
        if record.kind in (
            "election",
            "strategy-prepare",
            "strategy-commit",
            "strategy-rollback",
            "partition",
            "heal",
        ):
            detail = ", ".join(f"{k}={v}" for k, v in record.payload)
            print(
                f"  #{record.index:3d} t={record.time:8.4f}s epoch {record.epoch} "
                f"rank {record.coordinator}: {record.kind:17s} {detail}"
            )


if __name__ == "__main__":
    main()
