"""Strategy data model and XML serialization.

A :class:`Strategy` is the synthesizer's output and the communicator's
input, mirroring the paper's pipeline ("The strategies are output in an XML
format and parsed by the Communicator", Sec. IV-D). It holds M
:class:`SubCollective` entries, each a set of routed :class:`Flow` objects
over the logical topology plus chunk size and per-node aggregation flags.
"""

from __future__ import annotations

import enum
import xml.etree.ElementTree as ET
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import StrategyFormatError, SynthesisError
from repro.topology.graph import NodeId, NodeKind  # noqa: F401 (NodeKind used in checks)


class Primitive(enum.Enum):
    """Collective primitives AdapCC synthesizes strategies for.

    Reduce, Broadcast and AlltoAll are the base many-to-one, one-to-many
    and many-to-many cases; AllReduce = Reduce + reversed Broadcast,
    AllGather = one Broadcast per GPU, ReduceScatter = per-partition Reduce
    (Sec. IV-D).
    """

    REDUCE = "reduce"
    BROADCAST = "broadcast"
    ALLREDUCE = "allreduce"
    ALLGATHER = "allgather"
    REDUCE_SCATTER = "reduce_scatter"
    ALLTOALL = "alltoall"

    @property
    def needs_aggregation(self) -> bool:
        """Whether the primitive sums tensors (sets hasKernel on ranks)."""
        return self in (Primitive.REDUCE, Primitive.ALLREDUCE, Primitive.REDUCE_SCATTER)

    @property
    def has_root(self) -> bool:
        """Whether each sub-collective designates a root GPU."""
        return self in (
            Primitive.REDUCE,
            Primitive.BROADCAST,
            Primitive.ALLREDUCE,
            Primitive.REDUCE_SCATTER,
        )


@dataclass
class Flow:
    """One routed flow: tensor data moving from ``src`` to ``dst``.

    ``path`` is the full node walk src → … → dst over the logical topology
    (eq. 1's x variables in path form — flow conservation holds by
    construction).
    """

    src: NodeId
    dst: NodeId
    path: List[NodeId]

    def __post_init__(self) -> None:
        if len(self.path) < 2:
            raise SynthesisError(f"flow {self.src}->{self.dst}: path too short")
        if self.path[0] != self.src or self.path[-1] != self.dst:
            raise SynthesisError(
                f"flow {self.src}->{self.dst}: path endpoints {self.path[0]}, "
                f"{self.path[-1]} do not match"
            )
        gpu_nodes = [n for n in self.path if n.kind is NodeKind.GPU]
        if len(set(gpu_nodes)) != len(gpu_nodes):
            raise SynthesisError(f"flow {self.src}->{self.dst}: path revisits a GPU")
        # NIC nodes legitimately repeat when a flow relays through another
        # instance's GPU (in through the NIC, out through it again), but
        # never back-to-back.
        for a, b in zip(self.path, self.path[1:]):
            if a == b:
                raise SynthesisError(f"flow {self.src}->{self.dst}: self-loop at {a}")

    @property
    def edges(self) -> List[Tuple[NodeId, NodeId]]:
        """Ordered (src, dst) node pairs along the path."""
        return list(zip(self.path, self.path[1:]))


@dataclass
class SubCollective:
    """One of the M parallel sub-collectives (Fig. 8a).

    ``size`` is S_m (bytes of tensor partition), ``chunk_size`` is C_m,
    ``aggregation`` maps GPU nodes to a_{m,g} (absent = 0 / no kernel).
    """

    index: int
    size: float
    chunk_size: float
    flows: List[Flow]
    aggregation: Dict[NodeId, bool] = field(default_factory=dict)
    root: Optional[NodeId] = None

    def __post_init__(self) -> None:
        if self.size < 0:
            raise SynthesisError(f"sub-collective {self.index}: negative size")
        if self.chunk_size <= 0:
            raise SynthesisError(f"sub-collective {self.index}: chunk size must be positive")
        for node, flag in self.aggregation.items():
            if flag and node.kind is not NodeKind.GPU:
                raise SynthesisError(
                    f"sub-collective {self.index}: aggregation on non-GPU node {node}"
                )

    @property
    def num_chunks(self) -> int:
        """ceil(S_m / C_m) — chunks per flow in the pipeline."""
        if self.size == 0:
            return 0
        return int(-(-self.size // self.chunk_size))

    def aggregates_at(self, node: NodeId) -> bool:
        """a_{m,node}, defaulting to 0."""
        return bool(self.aggregation.get(node, False))

    def aggregates_at_rank(self, rank: int) -> bool:
        """a_{m,g} looked up by global rank."""
        return self.aggregates_at(NodeId(NodeKind.GPU, rank))

    def nodes(self) -> List[NodeId]:
        """All nodes touched by this sub-collective's flows, deduplicated."""
        seen: Dict[NodeId, None] = {}
        for flow in self.flows:
            for node in flow.path:
                seen.setdefault(node)
        return list(seen)


@dataclass
class Strategy:
    """A complete communication strategy for one primitive invocation."""

    primitive: Primitive
    tensor_size: float
    participants: List[int]  # global ranks
    subcollectives: List[SubCollective]
    predicted_time: float = 0.0
    #: Which routing family produced this strategy (for ablation reporting).
    routing_family: str = ""

    def __post_init__(self) -> None:
        if not self.participants:
            raise SynthesisError("strategy needs at least one participant")
        if not self.subcollectives:
            raise SynthesisError("strategy needs at least one sub-collective")
        total = sum(sc.size for sc in self.subcollectives)
        expected = self.expected_total_size(
            self.primitive, self.tensor_size, len(self.participants)
        )
        if abs(total - expected) > 1e-6 * max(1.0, expected):
            raise SynthesisError(
                f"sub-collective sizes sum to {total}, expected {expected} "
                f"for {self.primitive.value}"
            )

    @staticmethod
    def expected_total_size(primitive: Primitive, tensor_size: float, world: int) -> float:
        """Sum of sub-collective sizes implied by the primitive's semantics.

        ``tensor_size`` is the per-rank tensor size S. Reduce-family
        partitions sum to S; AlltoAll flows each carry the per-pair share
        S/N (partitioned across sub-collectives); AllGather runs one
        Broadcast of the full S-byte shard per rank.
        """
        if primitive is Primitive.ALLTOALL:
            return tensor_size / max(1, world)
        if primitive is Primitive.ALLGATHER:
            return tensor_size * world
        return tensor_size

    @property
    def parallelism(self) -> int:
        """M — the number of parallel sub-collectives."""
        return len(self.subcollectives)


# -- XML round-trip -----------------------------------------------------------------


def _node_to_str(node: NodeId) -> str:
    return str(node)


def _node_from_str(text: str) -> NodeId:
    if not text or text[0] not in "gn":
        raise StrategyFormatError(f"bad node id {text!r}")
    try:
        index = int(text[1:])
    except ValueError:
        raise StrategyFormatError(f"bad node id {text!r}")
    return NodeId(NodeKind.GPU if text[0] == "g" else NodeKind.NIC, index)


def strategy_to_xml(strategy: Strategy) -> str:
    """Serialize a strategy to the XML document the communicator parses."""
    root = ET.Element(
        "strategy",
        primitive=strategy.primitive.value,
        tensor_size=repr(strategy.tensor_size),
        participants=",".join(str(r) for r in strategy.participants),
        predicted_time=repr(strategy.predicted_time),
        routing_family=strategy.routing_family,
    )
    for sc in strategy.subcollectives:
        sc_el = ET.SubElement(
            root,
            "subcollective",
            index=str(sc.index),
            size=repr(sc.size),
            chunk_size=repr(sc.chunk_size),
        )
        if sc.root is not None:
            sc_el.set("root", _node_to_str(sc.root))
        for flow in sc.flows:
            ET.SubElement(
                sc_el,
                "flow",
                src=_node_to_str(flow.src),
                dst=_node_to_str(flow.dst),
                path=" ".join(_node_to_str(n) for n in flow.path),
            )
        agg = [node for node, flag in sc.aggregation.items() if flag]
        if agg:
            ET.SubElement(sc_el, "aggregation", nodes=" ".join(_node_to_str(n) for n in agg))
    return ET.tostring(root, encoding="unicode")


def strategy_from_xml(document: str) -> Strategy:
    """Parse a strategy document produced by :func:`strategy_to_xml`."""
    try:
        root = ET.fromstring(document)
    except ET.ParseError as exc:
        raise StrategyFormatError(f"malformed strategy XML: {exc}")
    if root.tag != "strategy":
        raise StrategyFormatError(f"unexpected root element {root.tag!r}")
    try:
        primitive = Primitive(root.get("primitive", ""))
    except ValueError:
        raise StrategyFormatError(f"unknown primitive {root.get('primitive')!r}")
    try:
        tensor_size = float(root.get("tensor_size"))
        participants = [int(r) for r in root.get("participants", "").split(",") if r]
        predicted_time = float(root.get("predicted_time", "0.0"))
    except (TypeError, ValueError) as exc:
        raise StrategyFormatError(f"bad strategy attributes: {exc}")

    subcollectives = []
    for sc_el in root.findall("subcollective"):
        try:
            index = int(sc_el.get("index"))
            size = float(sc_el.get("size"))
            chunk_size = float(sc_el.get("chunk_size"))
        except (TypeError, ValueError) as exc:
            raise StrategyFormatError(f"bad sub-collective attributes: {exc}")
        sc_root = sc_el.get("root")
        flows = []
        for flow_el in sc_el.findall("flow"):
            path = [_node_from_str(t) for t in flow_el.get("path", "").split()]
            flows.append(
                Flow(
                    src=_node_from_str(flow_el.get("src", "")),
                    dst=_node_from_str(flow_el.get("dst", "")),
                    path=path,
                )
            )
        aggregation: Dict[NodeId, bool] = {}
        agg_el = sc_el.find("aggregation")
        if agg_el is not None:
            for token in agg_el.get("nodes", "").split():
                aggregation[_node_from_str(token)] = True
        subcollectives.append(
            SubCollective(
                index=index,
                size=size,
                chunk_size=chunk_size,
                flows=flows,
                aggregation=aggregation,
                root=_node_from_str(sc_root) if sc_root else None,
            )
        )
    return Strategy(
        primitive=primitive,
        tensor_size=tensor_size,
        participants=participants,
        subcollectives=subcollectives,
        predicted_time=predicted_time,
        routing_family=root.get("routing_family", ""),
    )
