"""Structural lint over merged fleet exports (the ``--fleet`` pass's core).

A fleet JSONL stream interleaves several jobs' telemetry into one file;
this lint checks the merge is sound and the cross-job claims it carries
are backed by the stream itself:

* the meta header declares a fleet stream and lists its jobs; every
  span/event record carries a ``labels.job`` stamp naming one of them,
  and the header's span/event counts match the body;
* record identity is collision-free: span/event ids are unique *within*
  a job's stream (ids are per-hub counters, so the (job, id) pair is the
  merged stream's primary key);
* per-job byte conservation: a chunk travelling a multi-hop route keeps
  its byte size at every hop — same ``(tag, unit, chunk)`` *within one
  collective instance* (the job's enclosing collective span; tags and
  unit keys repeat across a job's sequential ops) → same ``bytes`` — so
  no job's traffic is silently inflated or truncated by the merge;
* every ``interference-attribution`` event names an aggressor that (a)
  is another job in the stream and (b) actually occupied the attributed
  link during the claimed window — the stream must contain one of the
  aggressor's chunk sends on that link overlapping it. Attribution
  without wire evidence is a lint error, not a judgement call.

Fairness bounds, ground-truth accuracy, and replay determinism need the
runner (a report or a second run), so they live in the bare-mode pass
body (``repro.analysis.passes.run_fleet_pass``), not here.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Dict, List, Tuple

from repro.analysis.verify_strategy import Violation
from repro.telemetry.export import TelemetryRun, read_jsonl

#: Window/occupancy overlap below this is numerical noise, not evidence.
_TOL = 1e-9


def _job_of(record: dict) -> str:
    labels = record.get("labels")
    if isinstance(labels, dict):
        return str(labels.get("job", ""))
    return ""


def lint_fleet_run(run: TelemetryRun) -> List[Violation]:
    """Check one parsed merged fleet stream."""
    violations: List[Violation] = []
    meta = run.meta
    if not meta.get("fleet"):
        violations.append(
            Violation(
                "fleet-schema",
                "meta",
                "meta header does not declare a fleet stream (fleet: true)",
            )
        )
    jobs = meta.get("jobs")
    if not isinstance(jobs, list) or not jobs:
        violations.append(
            Violation("fleet-schema", "meta", "meta header lists no jobs")
        )
        jobs = []
    job_set = {str(job) for job in jobs}
    spans_declared = meta.get("spans")
    if spans_declared is not None and spans_declared != len(run.spans):
        violations.append(
            Violation(
                "fleet-schema",
                "meta",
                f"meta declares {spans_declared} span(s), stream has "
                f"{len(run.spans)}",
            )
        )
    events_declared = meta.get("events")
    if events_declared is not None and events_declared != len(run.events):
        violations.append(
            Violation(
                "fleet-schema",
                "meta",
                f"meta declares {events_declared} event(s), stream has "
                f"{len(run.events)}",
            )
        )

    seen: Dict[Tuple[str, str], int] = {}
    for index, record in enumerate(run.records):
        subject = f"record{index}"
        job = _job_of(record)
        if not job:
            violations.append(
                Violation(
                    "fleet-schema",
                    subject,
                    f"{record.get('type')} record carries no labels.job stamp",
                )
            )
            continue
        if job_set and job not in job_set:
            violations.append(
                Violation(
                    "fleet-schema",
                    subject,
                    f"record labeled job {job!r} which the meta header "
                    "does not list",
                )
            )
        identity = (job, str(record.get("id")))
        if identity in seen:
            violations.append(
                Violation(
                    "fleet-identity",
                    subject,
                    f"duplicate record id {identity[1]!r} within job "
                    f"{job!r} (first at record{seen[identity]})",
                )
            )
        else:
            seen[identity] = index

    violations.extend(_lint_conservation(run))
    violations.extend(_lint_attributions(run))
    return violations


def _chunk_sends(run: TelemetryRun):
    """(job, tag, unit, chunk, link, start, end, bytes) per chunk send."""
    for span in run.spans:
        name = span.get("name", "")
        if span.get("cat") != "chunk" or not name.endswith(":send"):
            continue
        track = span.get("track", "")
        if not track.startswith("link:") or span.get("end") is None:
            continue
        args = span.get("args", {})
        yield (
            _job_of(span),
            name[: -len(":send")],
            str(args.get("unit", "")),
            int(args.get("chunk", -1)),
            track[len("link:"):],
            float(span["start"]),
            float(span["end"]),
            float(args.get("bytes", 0.0)),
        )


def collective_windows(run: TelemetryRun) -> Dict[str, List[Tuple[float, float, str]]]:
    """job → sorted ``(start, end, id)`` of its collective-category spans.

    A job's ops replay serially (one outstanding collective per job), so
    these windows are disjoint and locate which collective instance any
    chunk span belongs to.
    """
    windows: Dict[str, List[Tuple[float, float, str]]] = {}
    for span in run.spans:
        if span.get("cat") != "collective" or span.get("end") is None:
            continue
        windows.setdefault(_job_of(span), []).append(
            (float(span["start"]), float(span["end"]), str(span.get("id")))
        )
    for intervals in windows.values():
        intervals.sort()
    return windows


def _enclosing(
    windows: List[Tuple[float, float, str]], start: float
) -> str:
    index = bisect_right(windows, (start, float("inf"), "")) - 1
    if index >= 0 and windows[index][1] >= start - _TOL:
        return windows[index][2]
    return ""


def _lint_conservation(run: TelemetryRun) -> List[Violation]:
    """Per-job byte conservation of each chunk across its hops.

    A job replays many collectives and tags/unit keys repeat across
    them, so chunk identity is scoped to one collective instance — the
    job's collective span enclosing the chunk's start time. (Chunk
    spans outside any collective window — e.g. watchdog probe traffic —
    key on their own id, i.e. are exempt.)
    """
    violations: List[Violation] = []
    windows = collective_windows(run)
    sizes: Dict[Tuple[str, str, str, str, int], float] = {}
    for job, tag, unit, chunk, link, start, _end, size in _chunk_sends(run):
        owner = _enclosing(windows.get(job, []), start)
        key = (job, owner or f"@{start}:{link}", tag, unit, chunk)
        known = sizes.get(key)
        if known is None:
            sizes[key] = size
        elif size != known:
            violations.append(
                Violation(
                    "fleet-conservation",
                    f"{job}:{tag}:{unit}:chunk{chunk}",
                    f"chunk changed size across hops: {known} vs {size} "
                    f"byte(s) (hop {link})",
                )
            )
    return violations


def _lint_attributions(run: TelemetryRun) -> List[Violation]:
    """Every attribution's aggressor really occupied the named link."""
    violations: List[Violation] = []
    #: (job, link) -> [(start, end)] of that job's sends on the link.
    occupancy: Dict[Tuple[str, str], List[Tuple[float, float]]] = {}
    for job, _tag, _unit, _chunk, link, start, end, _size in _chunk_sends(run):
        occupancy.setdefault((job, link), []).append((start, end))
    jobs_in_stream = {_job_of(record) for record in run.records} - {""}

    for index, event in enumerate(run.events):
        if event.get("name") != "interference-attribution":
            continue
        subject = f"attribution@{event.get('start')}"
        args = event.get("args", {})
        victim = str(args.get("victim", ""))
        aggressor = str(args.get("aggressor", ""))
        link = str(args.get("link", ""))
        if _job_of(event) != victim:
            violations.append(
                Violation(
                    "fleet-attribution",
                    subject,
                    f"attribution stamped job {_job_of(event)!r} but claims "
                    f"victim {victim!r}",
                )
            )
        if aggressor == victim:
            violations.append(
                Violation(
                    "fleet-attribution", subject, "job attributed to itself"
                )
            )
            continue
        if aggressor not in jobs_in_stream:
            violations.append(
                Violation(
                    "fleet-attribution",
                    subject,
                    f"aggressor {aggressor!r} has no records in the stream",
                )
            )
            continue
        window_start = float(args.get("window_start", 0.0))
        window_end = float(args.get("window_end", 0.0))
        intervals = occupancy.get((aggressor, link), [])
        backed = any(
            min(end, window_end) - max(start, window_start) > _TOL
            for start, end in intervals
        )
        if not backed:
            violations.append(
                Violation(
                    "fleet-attribution",
                    subject,
                    f"aggressor {aggressor!r} has no chunk send on link "
                    f"{link!r} overlapping [{window_start}, {window_end}]",
                )
            )
    return violations


def lint_fleet_file(path: str) -> List[Violation]:
    """Load and lint a merged fleet JSONL export."""
    try:
        run = read_jsonl(path)
    except Exception as exc:  # TelemetryError or OSError
        return [Violation("fleet-io", path, f"unreadable fleet export: {exc}")]
    return lint_fleet_run(run)
