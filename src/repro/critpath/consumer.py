"""Streaming critical-path attribution on the live telemetry hub.

:class:`CritpathConsumer` is a :class:`~repro.telemetry.core.
TelemetryConsumer` that accumulates the chunk-pipeline ``…:send`` spans
of the current iteration and, on demand, runs the inferred-mode
critical-path analysis over them (:func:`repro.critpath.engine.
analyze_spans`). The chaos runner subscribes one next to the watchdog
and passes :meth:`top_link` as the watchdog's ``attribution`` hook, so
verdicts name a culprit and re-probes target the attributed link instead
of every implicated one. ``reset()`` is called after each
``end_iteration`` so attribution always reflects the iteration that just
fired the detectors.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.critpath.engine import ChunkSpan, analyze_spans
from repro.telemetry.core import Span, TelemetryConsumer


class CritpathConsumer(TelemetryConsumer):
    """Accumulates one iteration's chunk spans; attributes on demand."""

    def __init__(self, tol: float = 1e-9):
        self.tol = tol
        self._spans: List[ChunkSpan] = []
        self._readiness: List[Dict[int, float]] = []

    def on_span(self, span: Span) -> None:
        """Keep closed chunk ``…:send`` spans on ``link:*`` tracks."""
        if span.category != "chunk" or not span.name.endswith(":send"):
            return
        if not span.track.startswith("link:") or span.end is None:
            return
        chunk = int(span.args.get("chunk", -1))
        if chunk < 0:
            return
        self._spans.append(
            ChunkSpan(
                tag=span.name[: -len(":send")],
                track=span.track,
                unit=str(span.args.get("unit", "")),
                chunk=chunk,
                start=span.start,
                end=span.end,
                order=len(self._spans),
                bytes=float(span.args.get("bytes", 0.0)),
            )
        )

    def on_event(self, event: Span) -> None:
        """Keep ski-rental ready delays: pre-send straggler evidence."""
        if event.name != "ski-rental-decision":
            return
        delays = {
            int(rank): float(delay)
            for rank, delay in (event.args.get("ready_delays") or {}).items()
            if delay is not None
        }
        if delays:
            self._readiness.append(delays)

    def reset(self) -> None:
        """Drop the accumulated window (call once per iteration)."""
        self._spans = []
        self._readiness = []

    @property
    def span_count(self) -> int:
        return len(self._spans)

    def report(self) -> Optional[Dict[str, Any]]:
        """Full critpath report over the current window (None if empty)."""
        if not self._spans:
            return None
        return analyze_spans(
            self._spans, tol=self.tol, readiness=self._readiness
        )

    def top_link(self) -> Optional[str]:
        """The top-1 attributed link of the current window (None if empty).

        This is the watchdog's ``attribution`` hook: link names come out
        in the same ``"g0->n1"`` form the watchdog's implicated-link sets
        use, so the culprit can be intersected with a verdict's scope.
        """
        report = self.report()
        if report is None or not report["top_link"]:
            return None
        return report["top_link"]["name"]
