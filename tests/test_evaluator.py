"""Tests for the strategy evaluator (paper eqs. 2-6), incl. hand-computed cases."""

import pytest

from repro.errors import SynthesisError
from repro.hardware import Cluster, make_homo_cluster
from repro.simulation import Simulator
from repro.synthesis.evaluator import StrategyEvaluator
from repro.synthesis.strategy import Flow, Primitive, Strategy, SubCollective
from repro.topology import LogicalTopology
from repro.topology.graph import gpu_node, nic_node


@pytest.fixture
def topo():
    sim = Simulator()
    cluster = Cluster(sim, make_homo_cluster(num_servers=2, gpus_per_server=2))
    return LogicalTopology.from_cluster(cluster)


def reduce_strategy(
    flows, aggregation, size=1000.0, chunk=100.0, root=gpu_node(0), participants=(0, 1, 2, 3)
):
    sc = SubCollective(
        index=0, size=size, chunk_size=chunk, flows=flows, aggregation=aggregation, root=root
    )
    return Strategy(
        primitive=Primitive.REDUCE,
        tensor_size=size,
        participants=list(participants),
        subcollectives=[sc],
    )


class TestSingleFlow:
    def test_one_hop_reduce_matches_alpha_beta(self, topo):
        """T = t + ceil(S/C) * t with t = alpha + beta*C on a lone NVLink flow."""
        evaluator = StrategyEvaluator(topo, include_kernel_time=False)
        flow = Flow(gpu_node(1), gpu_node(0), [gpu_node(1), gpu_node(0)])
        strategy = reduce_strategy([flow], {gpu_node(0): True}, size=1000.0, chunk=100.0)
        ab = topo.edge(gpu_node(1), gpu_node(0)).effective
        t = ab.alpha + ab.beta * 100.0
        assert evaluator.objective(strategy) == pytest.approx(t + 10 * t)

    def test_kernel_time_added_at_aggregator(self, topo):
        flow = Flow(gpu_node(1), gpu_node(0), [gpu_node(1), gpu_node(0)])
        strategy = reduce_strategy([flow], {gpu_node(0): True}, size=1000.0, chunk=100.0)
        without = StrategyEvaluator(topo, include_kernel_time=False).objective(strategy)
        with_kernel = StrategyEvaluator(topo, include_kernel_time=True).objective(strategy)
        kernel = topo.cluster.gpu(0).spec.reduce_kernel_time(100.0)
        ab = topo.edge(gpu_node(1), gpu_node(0)).effective
        t = ab.alpha + ab.beta * 100.0
        # Kernel appears once in h_dst and raises the per-chunk pace to
        # max(transfer, kernel).
        expected = without + kernel + 10 * (max(t, kernel) - t)
        assert with_kernel == pytest.approx(expected)

    def test_multi_hop_accumulates(self, topo):
        evaluator = StrategyEvaluator(topo, include_kernel_time=False)
        path = [gpu_node(2), nic_node(1), nic_node(0), gpu_node(0)]
        flow = Flow(gpu_node(2), gpu_node(0), path)
        strategy = reduce_strategy([flow], {gpu_node(0): True}, size=1000.0, chunk=1000.0)
        expected = sum(
            e.effective.alpha + e.effective.beta * 1000.0 for e in topo.path_edges(path)
        )
        bottleneck = max(
            e.effective.alpha + e.effective.beta * 1000.0 for e in topo.path_edges(path)
        )
        assert evaluator.objective(strategy) == pytest.approx(expected + bottleneck)


class TestLinkLoads:
    def test_reduce_without_aggregation_sums_forwarded_flows(self, topo):
        """g2 -> g3 -> (nic) -> g0 with no aggregation at g3: the network edge
        carries g3's own flow plus the forwarded one."""
        flows = [
            Flow(
                gpu_node(2),
                gpu_node(0),
                [gpu_node(2), gpu_node(3), nic_node(1), nic_node(0), gpu_node(0)],
            ),
            Flow(gpu_node(3), gpu_node(0), [gpu_node(3), nic_node(1), nic_node(0), gpu_node(0)]),
        ]
        strategy = reduce_strategy(flows, {gpu_node(0): True})
        result = StrategyEvaluator(topo).evaluate(strategy)
        assert result.edge_loads[(0, (nic_node(1), nic_node(0)))] == 2

    def test_reduce_with_aggregation_merges_to_one(self, topo):
        flows = [
            Flow(
                gpu_node(2),
                gpu_node(0),
                [gpu_node(2), gpu_node(3), nic_node(1), nic_node(0), gpu_node(0)],
            ),
            Flow(gpu_node(3), gpu_node(0), [gpu_node(3), nic_node(1), nic_node(0), gpu_node(0)]),
        ]
        strategy = reduce_strategy(flows, {gpu_node(0): True, gpu_node(3): True})
        result = StrategyEvaluator(topo).evaluate(strategy)
        assert result.edge_loads[(0, (nic_node(1), nic_node(0)))] == 1

    def test_broadcast_replicas_group(self, topo):
        flows = [
            Flow(gpu_node(0), gpu_node(2), [gpu_node(0), nic_node(0), nic_node(1), gpu_node(2)]),
            Flow(gpu_node(0), gpu_node(3), [gpu_node(0), nic_node(0), nic_node(1), gpu_node(3)]),
        ]
        sc = SubCollective(index=0, size=1000.0, chunk_size=1000.0, flows=flows, root=gpu_node(0))
        strategy = Strategy(
            primitive=Primitive.BROADCAST,
            tensor_size=1000.0,
            participants=[0, 2, 3],
            subcollectives=[sc],
        )
        result = StrategyEvaluator(topo).evaluate(strategy)
        assert result.edge_loads[(0, (nic_node(0), nic_node(1)))] == 1

    def test_alltoall_flows_sum(self, topo):
        # Two distinct flows across the same network edge count twice.
        flows = [
            Flow(gpu_node(0), gpu_node(2), [gpu_node(0), nic_node(0), nic_node(1), gpu_node(2)]),
            Flow(gpu_node(1), gpu_node(3), [gpu_node(1), nic_node(0), nic_node(1), gpu_node(3)]),
        ]
        sc = SubCollective(index=0, size=250.0, chunk_size=250.0, flows=flows)
        strategy = Strategy(
            primitive=Primitive.ALLTOALL,
            tensor_size=1000.0,
            participants=[0, 1, 2, 3],
            subcollectives=[sc],
        )
        result = StrategyEvaluator(topo).evaluate(strategy)
        assert result.edge_loads[(0, (nic_node(0), nic_node(1)))] == 2

    def test_contention_slows_completion(self, topo):
        """Two raw flows on one link take about twice as long per chunk."""
        evaluator = StrategyEvaluator(topo, include_kernel_time=False)
        path2 = [gpu_node(2), nic_node(1), nic_node(0), gpu_node(0)]
        path3 = [gpu_node(3), nic_node(1), nic_node(0), gpu_node(0)]
        lone = reduce_strategy(
            [Flow(gpu_node(2), gpu_node(0), path2)], {gpu_node(0): True}
        )
        contended = reduce_strategy(
            [Flow(gpu_node(2), gpu_node(0), path2), Flow(gpu_node(3), gpu_node(0), path3)],
            {gpu_node(0): True},
        )
        assert evaluator.objective(contended) > 1.5 * evaluator.objective(lone)

    def test_loads_shared_across_subcollectives(self, topo):
        """eq. 3 sums loads over all M sub-collectives."""
        path = [gpu_node(2), nic_node(1), nic_node(0), gpu_node(0)]

        def sc(index):
            return SubCollective(
                index=index,
                size=500.0,
                chunk_size=500.0,
                flows=[Flow(gpu_node(2), gpu_node(0), list(path))],
                aggregation={gpu_node(0): True},
                root=gpu_node(0),
            )

        strategy = Strategy(
            primitive=Primitive.REDUCE,
            tensor_size=1000.0,
            participants=[0, 2],
            subcollectives=[sc(0), sc(1)],
        )
        result = StrategyEvaluator(topo).evaluate(strategy)
        assert result.total_loads[(nic_node(1), nic_node(0))] == 2


class TestAggregationTiming:
    def test_aggregator_waits_for_slowest(self, topo):
        """h at the root is the max over both children's arrivals."""
        evaluator = StrategyEvaluator(topo, include_kernel_time=False)
        fast = Flow(gpu_node(1), gpu_node(0), [gpu_node(1), gpu_node(0)])  # NVLink
        slow = Flow(
            gpu_node(2), gpu_node(0), [gpu_node(2), nic_node(1), nic_node(0), gpu_node(0)]
        )
        strategy = reduce_strategy([fast, slow], {gpu_node(0): True}, chunk=1000.0)
        result = evaluator.evaluate(strategy)
        # Both flows share the root's output time, so T is equal for both.
        assert result.flow_times[(0, 0)] == pytest.approx(result.flow_times[(0, 1)])
        slow_edges = topo.path_edges(slow.path)
        slow_arrival = sum(e.effective.alpha + e.effective.beta * 1000.0 for e in slow_edges)
        assert result.flow_times[(0, 0)] >= slow_arrival

    def test_intermediate_aggregation_departs_after_merge(self, topo):
        """A flow originating at an aggregating relay departs when the merge
        is complete, so the network hop starts later."""
        evaluator = StrategyEvaluator(topo, include_kernel_time=False)
        flows = [
            Flow(gpu_node(2), gpu_node(0),
                 [gpu_node(2), gpu_node(3), nic_node(1), nic_node(0), gpu_node(0)]),
            Flow(gpu_node(3), gpu_node(0), [gpu_node(3), nic_node(1), nic_node(0), gpu_node(0)]),
        ]
        merged = reduce_strategy(flows, {gpu_node(0): True, gpu_node(3): True}, chunk=1000.0)
        result = evaluator.evaluate(merged)
        nvlink = topo.edge(gpu_node(2), gpu_node(3)).effective
        nvlink_time = nvlink.alpha + nvlink.beta * 1000.0
        net_edges = topo.path_edges([gpu_node(3), nic_node(1), nic_node(0), gpu_node(0)])
        net_time = sum(e.effective.alpha + e.effective.beta * 1000.0 for e in net_edges)
        assert result.flow_times[(0, 1)] >= nvlink_time + net_time

    def test_cyclic_aggregation_rejected(self, topo):
        flows = [
            # g1 aggregates before g3 on one flow, after it on the other.
            Flow(gpu_node(0), gpu_node(3),
                 [gpu_node(0), gpu_node(1), nic_node(0), nic_node(1), gpu_node(3)]),
            Flow(gpu_node(2), gpu_node(1),
                 [gpu_node(2), gpu_node(3), nic_node(1), nic_node(0), gpu_node(1)]),
        ]
        sc = SubCollective(
            index=0,
            size=100.0,
            chunk_size=100.0,
            flows=flows,
            aggregation={gpu_node(1): True, gpu_node(3): True},
        )
        strategy = Strategy(
            primitive=Primitive.REDUCE,
            tensor_size=100.0,
            participants=[0, 1, 2, 3],
            subcollectives=[sc],
        )
        with pytest.raises(SynthesisError, match="cyclic"):
            StrategyEvaluator(topo).evaluate(strategy)


class TestChunking:
    def test_tiny_chunks_pay_alpha_per_chunk(self, topo):
        evaluator = StrategyEvaluator(topo, include_kernel_time=False)
        path = [gpu_node(2), nic_node(1), nic_node(0), gpu_node(0)]

        def with_chunk(chunk):
            return evaluator.objective(
                reduce_strategy(
                    [Flow(gpu_node(2), gpu_node(0), path)],
                    {gpu_node(0): True},
                    size=1_000_000.0,
                    chunk=chunk,
                )
            )

        assert with_chunk(1000.0) > with_chunk(100_000.0)

    def test_moderate_chunks_beat_store_and_forward(self, topo):
        """On a multi-hop path, pipelining with mid-size chunks should beat
        one monolithic chunk."""
        evaluator = StrategyEvaluator(topo, include_kernel_time=False)
        path = [gpu_node(2), nic_node(1), nic_node(0), gpu_node(0)]
        size = 100_000_000.0

        def with_chunk(chunk):
            return evaluator.objective(
                reduce_strategy(
                    [Flow(gpu_node(2), gpu_node(0), path)],
                    {gpu_node(0): True},
                    size=size,
                    chunk=chunk,
                )
            )

        assert with_chunk(4_000_000.0) < with_chunk(size)

    def test_monotone_in_beta(self, topo):
        """Degrading a link's profiled bandwidth never speeds the strategy."""
        from repro.network.cost_model import AlphaBeta

        evaluator = StrategyEvaluator(topo, include_kernel_time=False)
        path = [gpu_node(2), nic_node(1), nic_node(0), gpu_node(0)]
        strategy = reduce_strategy(
            [Flow(gpu_node(2), gpu_node(0), path)], {gpu_node(0): True}
        )
        before = evaluator.objective(strategy)
        edge = topo.edge(nic_node(1), nic_node(0))
        topo.set_estimate(
            nic_node(1), nic_node(0), AlphaBeta(edge.nominal.alpha, edge.nominal.beta * 4)
        )
        after = evaluator.objective(strategy)
        assert after > before
