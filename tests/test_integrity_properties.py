"""Property-based tests for the binary-search corruption localizer.

The two claims the lint's ``integrity-conviction-evidence`` and
``integrity-probe-bound`` rules assume, pinned over random candidate
sets, seeds, and fault behaviours:

* a **deterministically-corrupting** link (every probe over it comes
  back dirty) is always convicted, within ``max(1, ceil(log2 n))``
  probe rounds of ``n`` implicated links;
* a **clean link is never convicted** — whatever the guilty link does
  (fire deterministically, intermittently, or not at all), a conclusive
  verdict only ever names the faulted link, because conviction requires
  the convicted link's *own* probe to fail.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chaos import CorruptionFault, PayloadCorruptor
from repro.integrity import (
    SITE_KERNEL,
    BinarySearchLocalizer,
    DataPlane,
    IntegrityConfig,
    IntegrityMonitor,
)
from repro.integrity.localize import probe_round_bound

#: Random candidate sets: 1..24 distinct synthetic link names.
candidate_sets = st.integers(min_value=1, max_value=24).flatmap(
    lambda n: st.permutations([f"n{i}->n{i + 1}" for i in range(n)])
)


class TestRoundBound:
    @given(n=st.integers(min_value=0, max_value=4096))
    def test_bound_is_positive_and_logarithmic(self, n):
        bound = probe_round_bound(n)
        assert bound >= 1
        if n > 1:
            assert 2 ** bound >= n


class TestLocalizerProperties:
    @settings(max_examples=200, deadline=None)
    @given(
        candidates=candidate_sets,
        guilty_index=st.integers(min_value=0, max_value=23),
        repeats=st.integers(min_value=1, max_value=3),
    )
    def test_deterministic_fault_convicted_within_bound(
        self, candidates, guilty_index, repeats
    ):
        guilty = candidates[guilty_index % len(candidates)]
        probes = []

        def probe(link, round_index, repeat):
            probes.append(link)
            return link == guilty

        result = BinarySearchLocalizer(repeats=repeats).localize(candidates, probe)
        assert result.conclusive
        assert result.link == guilty
        assert result.rounds <= probe_round_bound(len(candidates))
        assert result.within_bound
        assert result.probes == len(probes)

    @settings(max_examples=200, deadline=None)
    @given(
        candidates=candidate_sets,
        guilty_index=st.integers(min_value=0, max_value=23),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        rate=st.floats(min_value=0.0, max_value=1.0),
        repeats=st.integers(min_value=1, max_value=3),
    )
    def test_clean_link_never_convicted(
        self, candidates, guilty_index, seed, rate, repeats
    ):
        """Whatever an intermittent fault does, conviction is direct:
        a conclusive verdict always names the faulted link itself."""
        guilty = candidates[guilty_index % len(candidates)]
        rng = np.random.default_rng(seed)

        def probe(link, round_index, repeat):
            return link == guilty and rng.random() < rate

        result = BinarySearchLocalizer(repeats=repeats).localize(candidates, probe)
        if result.conclusive:
            assert result.link == guilty
        assert result.within_bound

    @settings(max_examples=100, deadline=None)
    @given(candidates=candidate_sets, repeats=st.integers(min_value=1, max_value=3))
    def test_no_fault_is_inconclusive(self, candidates, repeats):
        result = BinarySearchLocalizer(repeats=repeats).localize(
            candidates, lambda link, round_index, repeat: False
        )
        assert not result.conclusive
        assert result.link is None
        assert result.within_bound


class TestMonitorLocalizationProperties:
    """The same claims through the live probe path: seeded payloads
    delivered over the data-plane tap against a real corruptor."""

    @settings(max_examples=50, deadline=None)
    @given(
        num_links=st.integers(min_value=2, max_value=12),
        guilty_index=st.integers(min_value=0, max_value=11),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_live_probes_convict_the_corrupting_link(
        self, num_links, guilty_index, seed
    ):
        candidates = [f"n{i}->n{i + 1}" for i in range(num_links)]
        guilty = candidates[guilty_index % num_links]
        plane = DataPlane()
        plane.corruptor = PayloadCorruptor(
            [CorruptionFault(link=guilty, site=SITE_KERNEL, rate=1.0)], seed=seed
        )
        monitor = IntegrityMonitor(IntegrityConfig(), seed=seed)
        plane.monitor = monitor
        # Route the monitor's probes through this local plane, not the
        # process-global one.
        import repro.integrity.monitor as monitor_module

        original = monitor_module.data_plane
        monitor_module.data_plane = lambda: plane
        try:
            result = monitor.run_localization(candidates)
        finally:
            monitor_module.data_plane = original
        assert result.conclusive
        assert result.link == guilty
        assert result.rounds <= probe_round_bound(num_links)
        # Probe traffic stays out of the pipeline coverage ledger.
        assert monitor.units_seen == 0
