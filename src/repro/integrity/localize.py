"""Binary-search localization of a corrupting link.

After a digest mismatch implicates a whole strategy's worth of links, the
localizer narrows the verdict with targeted out-of-band probe rounds.
Each round probes *half* of the remaining candidate set — one seeded
known-payload probe (times ``repeats``) per link in the half, issued in
parallel — and applies the classic group-testing recursion:

* some probed link came back corrupted → **convicted on direct
  evidence** (the link's own probe mismatched, never by elimination);
* the whole half came back clean → the guilty link hides in the other
  half; drop the probed links and recurse.

Because the final ≤2 candidates are probed exhaustively in one round,
the guilty link of a deterministically-corrupting fault is always named
within ``max(1, ceil(log2(n)))`` rounds of ``n`` implicated links — the
bound the hypothesis property suite pins. An *intermittent* fault may
stay silent through its own probe window; the search then runs out of
candidates and returns an inconclusive result rather than guessing,
which is what makes "a clean link is never convicted" unconditional:
conviction requires the convicted link's own probe to fail, and probes
over clean links are never corrupted.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

#: A probe: (link, round_index, repeat_index) -> True when the probe's
#: payload came back corrupted.
ProbeFn = Callable[[str, int, int], bool]


def probe_round_bound(num_candidates: int) -> int:
    """The localization round bound: ``max(1, ceil(log2(n)))``."""
    if num_candidates <= 1:
        return 1
    return max(1, math.ceil(math.log2(num_candidates)))


@dataclass
class LocalizationResult:
    """Outcome of one binary-search localization."""

    #: The convicted link, or ``None`` when the search was inconclusive.
    link: Optional[str]
    #: Probe rounds spent (≤ :func:`probe_round_bound` of the candidates).
    rounds: int
    #: Individual probes issued across all rounds.
    probes: int
    #: Size of the implicated candidate set the search started from.
    candidates: int
    #: Per-round history: (probed links, dirty links) tuples.
    history: List[Tuple[Tuple[str, ...], Tuple[str, ...]]] = field(
        default_factory=list
    )

    @property
    def conclusive(self) -> bool:
        """Whether a link was named (on direct probe evidence)."""
        return self.link is not None

    @property
    def within_bound(self) -> bool:
        """Whether the search respected the log2 probe-round bound."""
        return self.rounds <= probe_round_bound(self.candidates)


class BinarySearchLocalizer:
    """Narrows a corruption verdict to one link via halving probe rounds."""

    def __init__(self, repeats: int = 2):
        if repeats < 1:
            raise ValueError("localization needs at least one probe per link")
        self.repeats = repeats

    def localize(
        self, candidates: Sequence[str], probe: ProbeFn
    ) -> LocalizationResult:
        """Run the search over ``candidates`` using ``probe`` for evidence."""
        remaining = list(dict.fromkeys(candidates))
        result = LocalizationResult(
            link=None, rounds=0, probes=0, candidates=len(remaining)
        )
        while remaining and result.rounds < probe_round_bound(result.candidates):
            if len(remaining) <= 2:
                batch, remaining = remaining, []
            else:
                half = (len(remaining) + 1) // 2
                batch, remaining = remaining[:half], remaining[half:]
            result.rounds += 1
            dirty: List[str] = []
            for link in batch:
                for repeat in range(self.repeats):
                    result.probes += 1
                    if probe(link, result.rounds, repeat):
                        dirty.append(link)
                        break
            result.history.append((tuple(batch), tuple(dirty)))
            if dirty:
                # Direct evidence: this link's own probe came back bad.
                result.link = dirty[0]
                return result
        return result
