"""End-to-end collective execution tests: bit-exact semantics + timing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CommunicatorError
from repro.hardware import Cluster, MB, make_hetero_cluster, make_homo_cluster
from repro.runtime import (
    run_allgather,
    run_allreduce,
    run_alltoall,
    run_broadcast,
    run_reduce,
    run_reduce_scatter,
)
from repro.simulation import Simulator
from repro.synthesis import Primitive, Synthesizer, SynthesizerConfig
from repro.topology import LogicalTopology


def make_env(specs=None, **cfg):
    sim = Simulator()
    cluster = Cluster(sim, specs or make_homo_cluster(num_servers=2))
    topo = LogicalTopology.from_cluster(cluster)
    synth = Synthesizer(topo, SynthesizerConfig(**cfg) if cfg else None)
    return topo, synth


def make_inputs(ranks, length, seed=0, dtype=np.float64):
    rng = np.random.default_rng(seed)
    return {rank: rng.integers(0, 100, length).astype(dtype) for rank in ranks}


class TestReduce:
    def test_root_receives_exact_sum(self):
        topo, synth = make_env()
        ranks = list(range(8))
        inputs = make_inputs(ranks, 4096)
        strategy = synth.synthesize(Primitive.REDUCE, 4096 * 8, ranks, root=0)
        result = run_reduce(topo, strategy, inputs)
        expected = sum(inputs[r] for r in ranks)
        np.testing.assert_array_equal(result.outputs[0], expected)

    def test_nonzero_root(self):
        topo, synth = make_env()
        ranks = list(range(8))
        inputs = make_inputs(ranks, 1000)
        strategy = synth.synthesize(Primitive.REDUCE, 8000, ranks, root=5)
        result = run_reduce(topo, strategy, inputs)
        np.testing.assert_array_equal(result.outputs[5], sum(inputs[r] for r in ranks))

    def test_subset_participants(self):
        topo, synth = make_env()
        ranks = [1, 3, 4, 6]
        inputs = make_inputs(ranks, 512)
        strategy = synth.synthesize(Primitive.REDUCE, 512 * 8, ranks, root=3)
        result = run_reduce(topo, strategy, inputs)
        np.testing.assert_array_equal(result.outputs[3], sum(inputs[r] for r in ranks))

    def test_duration_positive_and_reasonable(self):
        topo, synth = make_env()
        ranks = list(range(8))
        inputs = make_inputs(ranks, 1 << 20)  # 8 MB
        strategy = synth.synthesize(Primitive.REDUCE, (1 << 20) * 8, ranks, root=0)
        result = run_reduce(topo, strategy, inputs)
        assert result.duration > 0
        # 8 MB over >= 6 GB/s class links: well under a second.
        assert result.duration < 1.0

    def test_inactive_ranks_excluded_from_sum(self):
        """Relay semantics: non-active participants do not contribute."""
        topo, synth = make_env()
        ranks = list(range(8))
        inputs = make_inputs(ranks, 256)
        strategy = synth.synthesize(Primitive.REDUCE, 2048, ranks, root=0)
        active = [0, 1, 2, 5]
        result = run_reduce(topo, strategy, inputs, active_ranks=active)
        np.testing.assert_array_equal(result.outputs[0], sum(inputs[r] for r in active))

    def test_ready_times_delay_completion(self):
        topo, synth = make_env()
        ranks = list(range(8))
        inputs = make_inputs(ranks, 256)
        strategy = synth.synthesize(Primitive.REDUCE, 2048, ranks, root=0)
        fast = run_reduce(topo, strategy, inputs)
        topo2, synth2 = make_env()
        strategy2 = synth2.synthesize(Primitive.REDUCE, 2048, ranks, root=0)
        slow = run_reduce(topo2, strategy2, inputs, ready_times={7: 0.5})
        assert slow.duration >= 0.5
        assert slow.duration > fast.duration
        np.testing.assert_array_equal(slow.outputs[0], fast.outputs[0])

    def test_wrong_primitive_rejected(self):
        topo, synth = make_env()
        strategy = synth.synthesize(Primitive.BROADCAST, 1024, range(8), root=0)
        with pytest.raises(CommunicatorError):
            run_reduce(topo, strategy, make_inputs(range(8), 128))

    def test_inactive_root_rejected(self):
        topo, synth = make_env()
        strategy = synth.synthesize(Primitive.REDUCE, 1024, range(8), root=0)
        with pytest.raises(CommunicatorError):
            run_reduce(topo, strategy, make_inputs(range(8), 128), active_ranks=[1, 2])


class TestBroadcast:
    def test_everyone_receives_root_tensor(self):
        topo, synth = make_env()
        ranks = list(range(8))
        inputs = make_inputs(ranks, 2048)
        strategy = synth.synthesize(Primitive.BROADCAST, 2048 * 8, ranks, root=2)
        result = run_broadcast(topo, strategy, inputs)
        for rank in ranks:
            np.testing.assert_array_equal(result.outputs[rank], inputs[2])

    def test_hetero_cluster(self):
        topo, synth = make_env(make_hetero_cluster())
        ranks = list(range(16))
        inputs = make_inputs(ranks, 1024)
        strategy = synth.synthesize(Primitive.BROADCAST, 8192, ranks, root=0)
        result = run_broadcast(topo, strategy, inputs)
        for rank in ranks:
            np.testing.assert_array_equal(result.outputs[rank], inputs[0])


class TestAllReduce:
    def test_all_ranks_get_exact_sum(self):
        topo, synth = make_env()
        ranks = list(range(8))
        inputs = make_inputs(ranks, 4096)
        strategy = synth.synthesize(Primitive.ALLREDUCE, 4096 * 8, ranks)
        result = run_allreduce(topo, strategy, inputs)
        expected = sum(inputs[r] for r in ranks)
        for rank in ranks:
            np.testing.assert_array_equal(result.outputs[rank], expected)

    def test_hetero_testbed(self):
        topo, synth = make_env(make_hetero_cluster())
        ranks = list(range(16))
        inputs = make_inputs(ranks, 2048)
        strategy = synth.synthesize(Primitive.ALLREDUCE, 2048 * 8, ranks)
        result = run_allreduce(topo, strategy, inputs)
        expected = sum(inputs[r] for r in ranks)
        for rank in ranks:
            np.testing.assert_array_equal(result.outputs[rank], expected)

    def test_partial_allreduce_delivers_partial_sum_everywhere(self):
        """Phase 1 of relay control: relays receive the partial aggregate."""
        topo, synth = make_env()
        ranks = list(range(8))
        inputs = make_inputs(ranks, 512)
        strategy = synth.synthesize(Primitive.ALLREDUCE, 4096, ranks)
        # Active set must contain the sub-collective roots (the coordinator
        # only roots sub-collectives at ready workers).
        roots = {sc.root.index for sc in strategy.subcollectives}
        active = sorted(roots | {2, 6})
        result = run_allreduce(topo, strategy, inputs, active_ranks=active)
        expected = sum(inputs[r] for r in active)
        for rank in ranks:  # including the relays
            np.testing.assert_array_equal(result.outputs[rank], expected)

    def test_algorithm_bandwidth_helper(self):
        topo, synth = make_env()
        ranks = list(range(8))
        length = 1 << 20
        inputs = make_inputs(ranks, length)
        strategy = synth.synthesize(Primitive.ALLREDUCE, length * 8, ranks)
        result = run_allreduce(topo, strategy, inputs)
        assert result.algorithm_bandwidth(length * 8) > 1e9  # > 1 GB/s

    def test_single_rank_identity(self):
        topo, synth = make_env()
        inputs = make_inputs([3], 64)
        strategy = synth.synthesize(Primitive.ALLREDUCE, 512, [3])
        result = run_allreduce(topo, strategy, inputs)
        np.testing.assert_array_equal(result.outputs[3], inputs[3])


class TestAllGather:
    def test_concatenation_in_rank_order(self):
        topo, synth = make_env()
        ranks = list(range(8))
        inputs = make_inputs(ranks, 128)
        strategy = synth.synthesize(Primitive.ALLGATHER, 1024, ranks)
        result = run_allgather(topo, strategy, inputs)
        expected = np.concatenate([inputs[r] for r in ranks])
        for rank in ranks:
            np.testing.assert_array_equal(result.outputs[rank], expected)


class TestReduceScatter:
    def test_each_rank_gets_its_partition_sum(self):
        topo, synth = make_env()
        ranks = list(range(8))
        inputs = make_inputs(ranks, 800)
        strategy = synth.synthesize(Primitive.REDUCE_SCATTER, 6400, ranks)
        result = run_reduce_scatter(topo, strategy, inputs)
        total = sum(inputs[r] for r in ranks)
        reconstructed = np.concatenate(
            [result.outputs[sc.root.index] for sc in strategy.subcollectives]
        )
        np.testing.assert_array_equal(reconstructed, total)


class TestAllToAll:
    def test_block_exchange_semantics(self):
        topo, synth = make_env()
        ranks = list(range(8))
        inputs = make_inputs(ranks, 8 * 32)
        strategy = synth.synthesize(Primitive.ALLTOALL, 8 * 32 * 8, ranks)
        result = run_alltoall(topo, strategy, inputs)
        for d_pos, dst in enumerate(ranks):
            for s_pos, src in enumerate(ranks):
                got = result.outputs[dst][s_pos * 32 : (s_pos + 1) * 32]
                sent = inputs[src][d_pos * 32 : (d_pos + 1) * 32]
                np.testing.assert_array_equal(got, sent)

    def test_indivisible_length_rejected(self):
        topo, synth = make_env()
        ranks = list(range(8))
        strategy = synth.synthesize(Primitive.ALLTOALL, 8 * 100, ranks)
        with pytest.raises(CommunicatorError):
            run_alltoall(topo, strategy, make_inputs(ranks, 100))


class TestInputValidation:
    def test_length_mismatch_rejected(self):
        topo, synth = make_env()
        strategy = synth.synthesize(Primitive.REDUCE, 1024, range(8), root=0)
        inputs = make_inputs(range(8), 128)
        inputs[3] = inputs[3][:64]
        with pytest.raises(CommunicatorError):
            run_reduce(topo, strategy, inputs)

    def test_missing_rank_rejected(self):
        topo, synth = make_env()
        strategy = synth.synthesize(Primitive.REDUCE, 1024, range(8), root=0)
        inputs = make_inputs(range(7), 128)
        with pytest.raises(CommunicatorError):
            run_reduce(topo, strategy, inputs)

    def test_float32_supported(self):
        topo, synth = make_env()
        ranks = list(range(8))
        inputs = make_inputs(ranks, 256, dtype=np.float32)
        strategy = synth.synthesize(Primitive.ALLREDUCE, 1024, ranks)
        result = run_allreduce(topo, strategy, inputs)
        expected = sum(inputs[r] for r in ranks)
        np.testing.assert_allclose(result.outputs[0], expected, rtol=1e-6)


@settings(max_examples=20, deadline=None)
@given(
    length=st.integers(min_value=8, max_value=4000),
    seed=st.integers(min_value=0, max_value=1000),
    active_mask=st.integers(min_value=1, max_value=255),
)
def test_property_partial_allreduce_sums_active_subset(length, seed, active_mask):
    """For any tensor length and any non-empty active subset containing the
    roots' instances, phase-1 AllReduce delivers exactly the active sum."""
    topo, synth = make_env(cfg_marker=None) if False else make_env()
    ranks = list(range(8))
    inputs = make_inputs(ranks, length, seed=seed)
    strategy = synth.synthesize(Primitive.ALLREDUCE, max(1, length * 8), ranks)
    active = {r for r in ranks if active_mask & (1 << r)}
    active.update(sc.root.index for sc in strategy.subcollectives)
    result = run_allreduce(topo, strategy, inputs, active_ranks=sorted(active))
    expected = sum(inputs[r] for r in sorted(active))
    for rank in ranks:
        np.testing.assert_array_equal(result.outputs[rank], expected)
