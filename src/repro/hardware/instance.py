"""Instance (server / cloud VM) model.

An instance groups GPUs, NUMA nodes, PCIe switches, and NICs. The spec
carries the ground-truth placement (which NUMA node a NIC hangs off, which
GPUs share a PCIe switch, which GPU pairs have NVLink) that the detector
recovers from probes, exactly as AdapCC's Detector does on real servers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Tuple

from repro.errors import TopologyError
from repro.hardware.gpu import GPU, GpuSpec
from repro.hardware.links import LinkSpec, LinkType, NicSpec


@dataclass(frozen=True)
class InstanceSpec:
    """Static description of one server.

    ``nvlink_pairs`` lists unordered local GPU index pairs directly joined
    by NVLink; ``None`` means a fully connected NVLink clique (the common
    4-GPU HGX baseboard), and an empty frozenset means no NVLinks at all
    (PCIe-only boxes, or fragmented cloud allocations).
    """

    name: str
    gpu: GpuSpec
    num_gpus: int
    pcie: LinkSpec
    nics: Tuple[NicSpec, ...]
    nvlink: Optional[LinkSpec] = None
    nvlink_pairs: Optional[FrozenSet[Tuple[int, int]]] = None
    #: NUMA node of each local GPU (len == num_gpus); defaults to two
    #: sockets split evenly.
    gpu_numa: Optional[Tuple[int, ...]] = None
    #: PCIe switch of each local GPU; defaults to one switch per NUMA node.
    gpu_pcie_switch: Optional[Tuple[int, ...]] = None
    num_numa_nodes: int = 2

    def __post_init__(self) -> None:
        if self.num_gpus < 1:
            raise TopologyError(f"instance {self.name}: needs at least one GPU")
        if not self.nics:
            raise TopologyError(f"instance {self.name}: needs at least one NIC")
        if self.pcie.type is not LinkType.PCIE:
            raise TopologyError(f"instance {self.name}: pcie spec must be PCIE type")
        if self.nvlink is not None and self.nvlink.type is not LinkType.NVLINK:
            raise TopologyError(f"instance {self.name}: nvlink spec must be NVLINK type")
        for attr in ("gpu_numa", "gpu_pcie_switch"):
            values = getattr(self, attr)
            if values is not None and len(values) != self.num_gpus:
                raise TopologyError(
                    f"instance {self.name}: {attr} must have one entry per GPU"
                )
        if self.nvlink_pairs:
            for a, b in self.nvlink_pairs:
                if not (0 <= a < self.num_gpus and 0 <= b < self.num_gpus) or a == b:
                    raise TopologyError(
                        f"instance {self.name}: invalid nvlink pair ({a}, {b})"
                    )

    def default_numa(self, local_index: int) -> int:
        """Even split of GPUs over NUMA nodes when not given explicitly."""
        per_node = max(1, self.num_gpus // self.num_numa_nodes)
        return min(local_index // per_node, self.num_numa_nodes - 1)

    def resolved_nvlink_pairs(self) -> FrozenSet[Tuple[int, int]]:
        """Unordered NVLink pairs with the full-clique default applied."""
        if self.nvlink is None:
            return frozenset()
        if self.nvlink_pairs is not None:
            return frozenset(tuple(sorted(p)) for p in self.nvlink_pairs)
        return frozenset(
            (i, j) for i in range(self.num_gpus) for j in range(i + 1, self.num_gpus)
        )


class Instance:
    """A concrete instance with placed GPUs.

    Construction assigns global ranks sequentially; the cluster passes the
    starting rank.
    """

    def __init__(self, spec: InstanceSpec, instance_id: int, first_rank: int):
        self.spec = spec
        self.instance_id = instance_id
        self.gpus: List[GPU] = []
        for local in range(spec.num_gpus):
            numa = spec.gpu_numa[local] if spec.gpu_numa else spec.default_numa(local)
            switch = (
                spec.gpu_pcie_switch[local] if spec.gpu_pcie_switch else numa
            )
            self.gpus.append(
                GPU(
                    spec.gpu,
                    rank=first_rank + local,
                    instance_id=instance_id,
                    local_index=local,
                    numa_node=numa,
                    pcie_switch=switch,
                )
            )
        self._nvlink_pairs = spec.resolved_nvlink_pairs()

    @property
    def name(self) -> str:
        """Display name: spec name + instance id."""
        return f"{self.spec.name}#{self.instance_id}"

    @property
    def nics(self) -> Tuple[NicSpec, ...]:
        """The instance's NICs (testbed servers have one)."""
        return self.spec.nics

    @property
    def primary_nic(self) -> NicSpec:
        """The NIC used for inter-instance traffic (paper testbed has one)."""
        return self.spec.nics[0]

    def has_nvlink(self, local_a: int, local_b: int) -> bool:
        """Whether two local GPUs are directly joined by NVLink."""
        return tuple(sorted((local_a, local_b))) in self._nvlink_pairs

    def same_pcie_switch(self, local_a: int, local_b: int) -> bool:
        """Ground truth for the detector's PCIe-contention probe."""
        return self.gpus[local_a].pcie_switch == self.gpus[local_b].pcie_switch

    def nic_numa_node(self, nic: NicSpec) -> int:
        """Ground truth for the detector's NUMA-affinity probe."""
        return nic.numa_node

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Instance {self.name} gpus={len(self.gpus)}>"
