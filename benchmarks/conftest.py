"""Shared plumbing for the figure benchmarks.

Every benchmark runs its measurement exactly once (simulations are
deterministic; pytest-benchmark's statistical repetition would only
re-measure identical numbers) and prints the same rows/series the paper's
figure reports. Assertions pin the *shape* — who wins, roughly by how
much — not absolute numbers, per DESIGN.md §2.
"""

import pytest


@pytest.fixture
def run_once(benchmark):
    """Run a measurement function once under pytest-benchmark."""

    def _run(fn):
        return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)

    return _run
