"""Tests for buffers, IPC tables, transmission contexts, and work queues."""

import numpy as np
import pytest

from repro.errors import BufferError_, CommunicatorError
from repro.hardware import Cluster, MB, make_hetero_cluster, make_homo_cluster
from repro.runtime import BufferRegistry, ContextManager, GpuBuffers, WorkQueues
from repro.runtime.partition import (
    check_uniform_inputs,
    chunk_ranges,
    elements_for_bytes,
    partition_ranges,
)
from repro.simulation import Simulator
from repro.synthesis import Primitive, Synthesizer
from repro.topology import LogicalTopology


def make_cluster(specs=None):
    sim = Simulator()
    return Cluster(sim, specs or make_homo_cluster(num_servers=2))


class TestPartition:
    def test_ranges_tile_exactly(self):
        ranges = partition_ranges(100, [1, 1, 1, 1])
        assert ranges == [(0, 25), (25, 50), (50, 75), (75, 100)]

    def test_ragged_division_covers_all(self):
        ranges = partition_ranges(10, [1, 1, 1])
        assert ranges[0][0] == 0 and ranges[-1][1] == 10
        assert all(a[1] == b[0] for a, b in zip(ranges, ranges[1:]))

    def test_zero_weight_gets_empty_range(self):
        ranges = partition_ranges(10, [1, 0, 1])
        assert ranges[1][0] == ranges[1][1]

    def test_invalid_weights(self):
        with pytest.raises(CommunicatorError):
            partition_ranges(10, [])
        with pytest.raises(CommunicatorError):
            partition_ranges(10, [0, 0])

    def test_chunk_ranges_tile(self):
        chunks = chunk_ranges(5, 26, 8)
        assert chunks == [(5, 13), (13, 21), (21, 26)]

    def test_chunk_ranges_empty_span(self):
        assert chunk_ranges(5, 5, 8) == []

    def test_elements_for_bytes_at_least_one(self):
        assert elements_for_bytes(1.0, 8) == 1
        assert elements_for_bytes(64.0, 8) == 8

    def test_check_uniform_inputs(self):
        good = {0: np.zeros(4), 1: np.zeros(4)}
        assert check_uniform_inputs(good) == (4, np.dtype(np.float64))
        with pytest.raises(CommunicatorError):
            check_uniform_inputs({0: np.zeros(4), 1: np.zeros(5)})
        with pytest.raises(CommunicatorError):
            check_uniform_inputs({0: np.zeros(4), 1: np.zeros(4, dtype=np.float32)})
        with pytest.raises(CommunicatorError):
            check_uniform_inputs({})


class TestGpuBuffers:
    def test_register_and_size(self):
        buffers = GpuBuffers(0, capacity_bytes=100.0)
        buffers.register("local", 40.0)
        assert buffers.size_of("local") == 40.0
        assert buffers.registered_bytes == 40.0

    def test_duplicate_rejected(self):
        buffers = GpuBuffers(0, capacity_bytes=100.0)
        buffers.register("local", 10.0)
        with pytest.raises(BufferError_):
            buffers.register("local", 10.0)

    def test_overcommit_rejected(self):
        buffers = GpuBuffers(0, capacity_bytes=100.0)
        buffers.register("a", 60.0)
        with pytest.raises(BufferError_):
            buffers.register("b", 60.0)

    def test_handle_stable(self):
        buffers = GpuBuffers(3, capacity_bytes=100.0)
        buffers.register("receive", 10.0)
        h1 = buffers.export_handle("receive")
        h2 = buffers.export_handle("receive")
        assert h1 is h2
        assert h1.owner_rank == 3

    def test_handle_requires_registration(self):
        buffers = GpuBuffers(0, capacity_bytes=100.0)
        with pytest.raises(BufferError_):
            buffers.export_handle("ghost")

    def test_release_idempotent(self):
        buffers = GpuBuffers(0, capacity_bytes=100.0)
        buffers.register("a", 10.0)
        buffers.release("a")
        buffers.release("a")
        assert buffers.registered_bytes == 0.0


class TestBufferRegistry:
    def test_ipc_within_instance(self):
        cluster = make_cluster()
        registry = BufferRegistry(cluster)
        registry.of(1).register("ctx0:receive", MB)
        registry.publish_handle(0, 1, "ctx0:receive")
        handle = registry.lookup_handle(0, accessor_rank=0, owner_rank=1)
        assert handle.owner_rank == 1

    def test_ipc_across_instances_rejected(self):
        cluster = make_cluster()
        registry = BufferRegistry(cluster)
        registry.of(4).register("ctx0:receive", MB)
        registry.publish_handle(0, 4, "ctx0:receive")
        with pytest.raises(BufferError_):
            registry.lookup_handle(0, accessor_rank=0, owner_rank=4)

    def test_unpublished_handle_rejected(self):
        cluster = make_cluster()
        registry = BufferRegistry(cluster)
        with pytest.raises(BufferError_):
            registry.lookup_handle(0, accessor_rank=0, owner_rank=1)

    def test_ip_table(self):
        cluster = make_cluster()
        registry = BufferRegistry(cluster)
        ip = registry.publish_ip(0, 1)
        assert registry.lookup_ip(0, 1) == ip
        with pytest.raises(BufferError_):
            registry.lookup_ip(0, 0)


class TestContextManager:
    def make_strategy(self, cluster):
        topo = LogicalTopology.from_cluster(cluster)
        return topo, Synthesizer(topo).synthesize(
            Primitive.ALLREDUCE, 8 * MB, range(cluster.world_size)
        )

    def test_plan_one_context_per_subcollective(self):
        cluster = make_cluster()
        _, strategy = self.make_strategy(cluster)
        manager = ContextManager(cluster)
        contexts = manager.plan_contexts(strategy)
        assert len(contexts) == strategy.parallelism
        assert all(c.num_streams == 2 for c in contexts)  # allreduce pipelining

    def test_setup_registers_buffers_and_costs_time(self):
        cluster = make_cluster()
        _, strategy = self.make_strategy(cluster)
        manager = ContextManager(cluster)
        contexts = manager.plan_contexts(strategy)
        duration = manager.setup_all(contexts)
        assert duration > 0
        assert all(c.ready for c in contexts)
        buffers = manager.registry.of(0)
        assert buffers.registered_bytes > 0

    def test_double_setup_rejected(self):
        cluster = make_cluster()
        _, strategy = self.make_strategy(cluster)
        manager = ContextManager(cluster)
        contexts = manager.plan_contexts(strategy)
        manager.setup_all(contexts)
        with pytest.raises(CommunicatorError):
            manager.setup_all(contexts)

    def test_teardown_releases_memory(self):
        cluster = make_cluster()
        _, strategy = self.make_strategy(cluster)
        manager = ContextManager(cluster)
        contexts = manager.plan_contexts(strategy)
        manager.setup_all(contexts)
        manager.teardown(contexts)
        assert manager.registry.of(0).registered_bytes == 0.0
        assert not manager.contexts

    def test_reconstruction_cheaper_than_memory_limit(self):
        """Setting up contexts twice (graph reconstruction) must not leak."""
        cluster = make_cluster()
        topo, strategy = self.make_strategy(cluster)
        manager = ContextManager(cluster)
        for _ in range(3):
            contexts = manager.plan_contexts(strategy)
            manager.setup_all(contexts)
            manager.teardown(contexts)
        assert manager.registry.of(0).registered_bytes == 0.0


class TestWorkQueues:
    def test_submit_poll_complete_fetch(self):
        sim = Simulator()
        queues = WorkQueues(sim, rank=0)
        seq = queues.submit(Primitive.ALLREDUCE, np.ones(4))
        done = []

        def worker(sim):
            item = yield queues.poll_work()
            queues.complete(item, item.tensor * 2)

        def framework(sim):
            sequence, output = yield queues.fetch_result()
            done.append((sequence, output))

        sim.process(worker(sim))
        sim.process(framework(sim))
        sim.run()
        assert done[0][0] == seq
        np.testing.assert_array_equal(done[0][1], np.full(4, 2.0))

    def test_fifo_order_preserved(self):
        sim = Simulator()
        queues = WorkQueues(sim, rank=0)
        s1 = queues.submit(Primitive.ALLREDUCE, np.ones(1))
        s2 = queues.submit(Primitive.ALLTOALL, np.ones(1))
        polled = []

        def worker(sim):
            for _ in range(2):
                item = yield queues.poll_work()
                polled.append(item.sequence)

        sim.process(worker(sim))
        sim.run()
        assert polled == [s1, s2]

    def test_drain_results_nonblocking(self):
        sim = Simulator()
        queues = WorkQueues(sim, rank=0)
        assert queues.drain_results() == {}
        queues.result.put((7, np.zeros(1)))
        sim.run()
        assert 7 in queues.drain_results()
