"""Routing candidate generation.

The synthesizer's search space over communication graphs is organized as
*routing families*. Each family builds, for given participants and root, a
reduce tree expressed as parent pointers over GPU ranks; reversal gives the
broadcast graph and AlltoAll uses direct pairwise routes. Families:

* ``hierarchical-tree`` — per-instance reduction onto a local leader, then
  a bandwidth-sorted binary tree over leaders (weak NICs become leaves —
  the key heterogeneity-awareness the paper's optimizer discovers);
* ``hierarchical-star`` — local reduction, then every leader sends
  directly to the root (minimizes hops; the root's ingress is shared);
* ``hierarchical-chain`` — local reduction, then a bandwidth-ordered chain
  of leaders (maximizes per-link pipelining, linear in latency);
* ``flat-star`` — every GPU sends straight to the root (best at small
  sizes where latency dominates);
* ``widest-tree`` — Prim-style maximum-bottleneck-bandwidth arborescence
  over all GPUs, ignoring instance structure (lets the evaluator judge
  whether cross-instance shortcuts pay off).

All families consult the topology's *effective* (profiled) link estimates,
so re-profiling changes the produced trees — this is the adaptivity loop.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import SynthesisError
from repro.synthesis.strategy import Flow
from repro.topology.graph import EdgeKind, LogicalTopology, NodeId, gpu_node, nic_node

#: parent pointer map: rank -> parent rank (root maps to itself).
Tree = Dict[int, int]


# -- path expansion -------------------------------------------------------------


def hop_path(topology: LogicalTopology, src_rank: int, dst_rank: int) -> List[NodeId]:
    """Node walk of a single logical hop between two GPUs.

    Same instance: the direct GPU→GPU edge. Cross instance: through both
    instances' NICs.
    """
    src = topology.cluster.gpu(src_rank)
    dst = topology.cluster.gpu(dst_rank)
    if src.instance_id == dst.instance_id:
        return [gpu_node(src_rank), gpu_node(dst_rank)]
    return [
        gpu_node(src_rank),
        nic_node(src.instance_id),
        nic_node(dst.instance_id),
        gpu_node(dst_rank),
    ]


def tree_flow_paths(
    topology: LogicalTopology, tree: Tree, root: int
) -> Dict[int, List[NodeId]]:
    """Per-rank node walk from each non-root rank to the root along the tree."""
    paths: Dict[int, List[NodeId]] = {}
    for rank in tree:
        if rank == root:
            continue
        walk: List[NodeId] = [gpu_node(rank)]
        current = rank
        hops = 0
        while current != root:
            parent = tree[current]
            if parent == current:
                raise SynthesisError(f"rank {current} is a non-root fixed point")
            walk.extend(hop_path(topology, current, parent)[1:])
            current = parent
            hops += 1
            if hops > len(tree):
                raise SynthesisError("tree contains a cycle")
        paths[rank] = walk
    return paths


def tree_interior_ranks(tree: Tree, root: int) -> List[int]:
    """Ranks with at least one child (aggregation points), root included."""
    children: Dict[int, int] = defaultdict(int)
    for rank, parent in tree.items():
        if rank != root:
            children[parent] += 1
    return sorted(set(list(children.keys()) + [root]))


# -- link-quality helpers ----------------------------------------------------------


def gpu_pair_bandwidth(topology: LogicalTopology, a: int, b: int) -> float:
    """Effective bandwidth of the one-hop route a→b (bottleneck over edges)."""
    path = hop_path(topology, a, b)
    return min(edge.effective.bandwidth for edge in topology.path_edges(path))


def instance_network_bandwidth(topology: LogicalTopology, instance_id: int) -> float:
    """Representative network bandwidth of an instance (max over its
    outgoing NIC edges' effective estimates)."""
    node = nic_node(instance_id)
    bandwidths = [
        edge.effective.bandwidth
        for (src, _dst), edge in topology.edges.items()
        if src == node and edge.kind is EdgeKind.NETWORK
    ]
    if not bandwidths:
        return float("inf")  # single instance: no network constraint
    return max(bandwidths)


# -- tree families -----------------------------------------------------------------


def _group_by_instance(
    topology: LogicalTopology, participants: Sequence[int]
) -> Dict[int, List[int]]:
    groups: Dict[int, List[int]] = defaultdict(list)
    for rank in participants:
        groups[topology.cluster.gpu(rank).instance_id].append(rank)
    return dict(groups)


def _local_leaders(
    topology: LogicalTopology,
    groups: Dict[int, List[int]],
    root: int,
    rotation: int = 0,
) -> Dict[int, int]:
    """Pick one leader per instance; the root leads its own instance.

    ``rotation`` rotates the leader choice so different sub-collectives
    spread intra-instance load over different NVLinks (the analogue of
    NCCL's multiple channels).
    """
    root_instance = topology.cluster.gpu(root).instance_id
    leaders: Dict[int, int] = {}
    for instance_id, ranks in groups.items():
        if instance_id == root_instance:
            leaders[instance_id] = root
        else:
            ordered = sorted(ranks)
            leaders[instance_id] = ordered[rotation % len(ordered)]
    return leaders


def _attach_locals(tree: Tree, groups: Dict[int, List[int]], leaders: Dict[int, int]) -> None:
    """Star every non-leader GPU onto its instance leader."""
    for instance_id, ranks in groups.items():
        leader = leaders[instance_id]
        for rank in ranks:
            if rank != leader:
                tree[rank] = leader


def hierarchical_tree(
    topology: LogicalTopology,
    participants: Sequence[int],
    root: int,
    rotation: int = 0,
    fanout: int = 2,
) -> Tree:
    """Local leaders + bandwidth-sorted ``fanout``-ary tree over leaders."""
    groups = _group_by_instance(topology, participants)
    leaders = _local_leaders(topology, groups, root, rotation)
    tree: Tree = {root: root}
    _attach_locals(tree, groups, leaders)

    root_instance = topology.cluster.gpu(root).instance_id
    other = [iid for iid in groups if iid != root_instance]
    # High-bandwidth instances become interior nodes; weak NICs end up as
    # leaves so they never forward other instances' aggregated traffic.
    other.sort(key=lambda iid: instance_network_bandwidth(topology, iid), reverse=True)
    ordered_instances = [root_instance] + other
    for position, instance_id in enumerate(ordered_instances):
        if position == 0:
            continue
        parent_instance = ordered_instances[(position - 1) // fanout]
        tree[leaders[instance_id]] = leaders[parent_instance]
    return tree


def hierarchical_star(
    topology: LogicalTopology, participants: Sequence[int], root: int, rotation: int = 0
) -> Tree:
    """Local leaders all sending directly to the root."""
    groups = _group_by_instance(topology, participants)
    leaders = _local_leaders(topology, groups, root, rotation)
    tree: Tree = {root: root}
    _attach_locals(tree, groups, leaders)
    root_instance = topology.cluster.gpu(root).instance_id
    for instance_id, leader in leaders.items():
        if instance_id != root_instance:
            tree[leader] = root
    return tree


def hierarchical_chain(
    topology: LogicalTopology, participants: Sequence[int], root: int, rotation: int = 0
) -> Tree:
    """Local leaders chained in ascending bandwidth order toward the root.

    The weakest instance sits at the far end of the chain so every link
    carries exactly one aggregated flow — the chain trades latency (depth)
    for zero fan-in contention.
    """
    groups = _group_by_instance(topology, participants)
    leaders = _local_leaders(topology, groups, root, rotation)
    tree: Tree = {root: root}
    _attach_locals(tree, groups, leaders)
    root_instance = topology.cluster.gpu(root).instance_id
    other = [iid for iid in groups if iid != root_instance]
    other.sort(key=lambda iid: instance_network_bandwidth(topology, iid))
    chain_instances = other + [root_instance]
    for a, b in zip(chain_instances, chain_instances[1:]):
        tree[leaders[a]] = leaders[b]
    return tree


def flat_star(
    topology: LogicalTopology, participants: Sequence[int], root: int, rotation: int = 0
) -> Tree:
    """Every participant sends directly to the root."""
    tree: Tree = {root: root}
    for rank in participants:
        if rank != root:
            tree[rank] = root
    return tree


def widest_tree(
    topology: LogicalTopology, participants: Sequence[int], root: int, rotation: int = 0
) -> Tree:
    """Prim-style maximum-bottleneck arborescence into the root.

    Repeatedly attach the unattached GPU whose best link into the attached
    set has the highest effective bandwidth.
    """
    remaining = set(participants) - {root}
    tree: Tree = {root: root}
    attached = [root]
    while remaining:
        best: Optional[Tuple[float, int, int]] = None
        for rank in sorted(remaining):
            for candidate_parent in attached:
                bandwidth = gpu_pair_bandwidth(topology, rank, candidate_parent)
                if best is None or bandwidth > best[0]:
                    best = (bandwidth, rank, candidate_parent)
        assert best is not None
        _bandwidth, rank, parent = best
        tree[rank] = parent
        attached.append(rank)
        remaining.remove(rank)
    return tree


#: All reduce-tree families the optimizer enumerates, by name.
TREE_FAMILIES: Dict[str, Callable[..., Tree]] = {
    "hierarchical-tree": hierarchical_tree,
    "hierarchical-star": hierarchical_star,
    "hierarchical-chain": hierarchical_chain,
    "flat-star": flat_star,
    "widest-tree": widest_tree,
}


# -- flow construction -----------------------------------------------------------------


def reduce_flows(topology: LogicalTopology, tree: Tree, root: int) -> List[Flow]:
    """One flow per non-root participant, routed along the tree (eq. 1)."""
    paths = tree_flow_paths(topology, tree, root)
    return [
        Flow(src=gpu_node(rank), dst=gpu_node(root), path=path)
        for rank, path in sorted(paths.items())
    ]


def broadcast_flows(topology: LogicalTopology, tree: Tree, root: int) -> List[Flow]:
    """Broadcast = the reduce tree reversed: root → every participant."""
    paths = tree_flow_paths(topology, tree, root)
    return [
        Flow(src=gpu_node(root), dst=gpu_node(rank), path=list(reversed(path)))
        for rank, path in sorted(paths.items())
    ]


def alltoall_flows(topology: LogicalTopology, participants: Sequence[int]) -> List[Flow]:
    """Direct pairwise flows for AlltoAll (every ordered pair)."""
    flows = []
    for src in participants:
        for dst in participants:
            if src != dst:
                flows.append(
                    Flow(
                        src=gpu_node(src),
                        dst=gpu_node(dst),
                        path=hop_path(topology, src, dst),
                    )
                )
    return flows
