"""The trainer loop: compute → (adaptive) collective, per iteration.

The trainer plays the paper's modified training scripts: each iteration it
draws per-worker compute times (with stragglers and interference), then
drives the gradient collective through the chosen backend. For AdapCC it
optionally enables adaptive relay control, periodic re-profiling (the
``adapcc.profile()`` API), and fault recovery with data-loader
redistribution; baselines always wait for the slowest worker, as their
libraries do.

Metrics follow the paper:

* *communication time* = collective completion − first worker ready
  ("includes the waiting time of faster workers and the actual execution
  time", Sec. VI-D);
* *iteration time* = compute + communication (no overlap, as in the
  paper's synchronous data-parallel setup);
* *throughput* = global batch size / iteration time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.baselines.common import Backend
from repro.errors import TrainingError
from repro.relay.coordinator import AdaptiveAllReduce
from repro.runtime.context import ContextManager
from repro.synthesis.strategy import Primitive
from repro.training.compute import ComputeModel
from repro.training.data import ShardedDataLoader
from repro.training.interference import InterferenceModel
from repro.training.models import ModelSpec


@dataclass
class TrainerConfig:
    """Knobs of one training run."""

    iterations: int = 30
    #: Per-GPU batch (None = the model's paper default).
    batch: Optional[int] = None
    #: Use AdapCC's relay control (ignored for non-AllReduce models and
    #: static baselines, which have no coordinator).
    adaptive_relay: bool = True
    #: Re-profile (and re-synthesize) every this many iterations; None
    #: disables periodic profiling. The paper uses 500.
    profile_period: Optional[int] = None
    #: Elements per payload array; simulated traffic is scaled up to the
    #: model's gradient size via byte_scale.
    payload_elements: int = 4096
    #: Cap on simulated chunks per sub-collective per iteration (pipelining
    #: effects saturate past a few tens of chunks; capping keeps multi-
    #: iteration runs fast).
    max_chunks: int = 24
    #: DDP-style gradient buckets per iteration (Fig. 3a). With B > 1, the
    #: backward pass releases gradients progressively — bucket b of B is
    #: ready at compute x (b+1)/B — and each bucket's AllReduce launches as
    #: soon as its bucket lands, overlapping communication with the rest of
    #: the backward pass. Bucketing bypasses adaptive relay control (the
    #: coordinator operates per collective, not per bucket, in this model).
    buckets: int = 1
    #: Compute-noise settings.
    jitter_sigma: float = 0.06
    straggle_prob: float = 0.04
    seed: int = 0


@dataclass
class IterationStats:
    """Per-iteration measurements."""

    index: int
    compute_seconds_max: float
    compute_seconds_min: float
    comm_seconds: float
    iteration_seconds: float
    proceeded: bool = False
    relays: List[int] = field(default_factory=list)
    faulty: List[int] = field(default_factory=list)

    @property
    def wait_ratio(self) -> float:
        """Straggler wait / actual communication time (Fig. 3b's metric)."""
        execution = self.comm_seconds - (self.compute_seconds_max - self.compute_seconds_min)
        if execution <= 0:
            return float("inf")
        return (self.compute_seconds_max - self.compute_seconds_min) / execution


@dataclass
class TrainingReport:
    """Aggregate results of a run."""

    stats: List[IterationStats]
    global_batch: int
    reconstructions: int = 0

    @property
    def iterations(self) -> int:
        """Number of iterations recorded."""
        return len(self.stats)

    @property
    def mean_iteration_seconds(self) -> float:
        """Average wall time per iteration (compute + communication)."""
        return float(np.mean([s.iteration_seconds for s in self.stats]))

    @property
    def mean_comm_seconds(self) -> float:
        """Average per-iteration communication time (waiting + transfer)."""
        return float(np.mean([s.comm_seconds for s in self.stats]))

    @property
    def throughput(self) -> float:
        """Samples/second: global batch / iteration time (Sec. VI-D)."""
        return self.global_batch / self.mean_iteration_seconds

    @property
    def makespan(self) -> float:
        """Total simulated time of the run (Fig. 18a's metric)."""
        return float(sum(s.iteration_seconds for s in self.stats))


class Trainer:
    """Synchronous data-parallel training on the simulated cluster."""

    def __init__(
        self,
        backend: Backend,
        model: ModelSpec,
        config: Optional[TrainerConfig] = None,
        interference: Optional[InterferenceModel] = None,
        loader: Optional[ShardedDataLoader] = None,
    ):
        self.backend = backend
        self.topology = backend.topology
        self.model = model
        self.config = config or TrainerConfig()
        self.interference = interference
        cluster = self.topology.cluster
        self.participants = [gpu.rank for gpu in cluster.gpus]
        batch = self.config.batch or model.default_batch
        self.compute = ComputeModel(
            cluster,
            model,
            batch,
            jitter_sigma=self.config.jitter_sigma,
            straggle_prob=self.config.straggle_prob,
            seed=self.config.seed,
        )
        self.global_batch = batch * len(self.participants)
        self.loader = loader or ShardedDataLoader(
            dataset_size=max(self.global_batch * 100, 10_000),
            global_batch=self.global_batch,
            workers=list(self.participants),
        )
        self.contexts = ContextManager(cluster)
        self.adaptive: Optional[AdaptiveAllReduce] = None
        if self.config.adaptive_relay and self._supports_relay():
            self.adaptive = AdaptiveAllReduce(self.topology, seed=self.config.seed)
        self._payload: Dict[int, np.ndarray] = {
            rank: np.full(self.config.payload_elements, float(rank + 1))
            for rank in self.participants
        }
        self.byte_scale = self.model.tensor_bytes / (
            self.config.payload_elements * 8.0
        )
        self.reconstructions = 0

    def _supports_relay(self) -> bool:
        return (
            self.backend.name == "adapcc"
            and self.model.primitive is Primitive.ALLREDUCE
            and self.config.buckets == 1
        )

    # -- the loop -----------------------------------------------------------------

    def run(self) -> TrainingReport:
        """Run the configured number of iterations; drives the simulator."""
        sim = self.topology.cluster.sim
        stats: List[IterationStats] = []
        strategy = self._plan()
        self._setup_contexts(strategy)

        for index in range(self.config.iterations):
            if (
                self.config.profile_period
                and index > 0
                and index % self.config.profile_period == 0
            ):
                strategy = self._reconstruct(strategy)

            interference_map = (
                self.interference.at(sim.now) if self.interference else None
            )
            ready = self.compute.draw(interference_map)
            ready = {r: ready[r] for r in self.participants}
            self.loader.next_batch()

            iteration_start = sim.now
            faulty: List[int] = []
            if self.adaptive is not None:
                result = self.adaptive.run(
                    strategy,
                    self._inputs(),
                    ready,
                    byte_scale=self.byte_scale,
                    max_chunks=self.config.max_chunks,
                )
                proceeded = result.decision.proceed
                relays = result.decision.relays
                if result.fault_report and result.fault_report.any_faults:
                    faulty = list(result.fault_report.faulty_ranks)
                    self._handle_faults(faulty)
                    strategy = self._plan()
                    self._setup_contexts(strategy)
            elif (
                self.config.buckets > 1
                and self.model.primitive is Primitive.ALLREDUCE
            ):
                result = self._run_bucketed(strategy, ready)
                proceeded = False
                relays = []
            else:
                result = self.backend.run(
                    strategy,
                    self._inputs(),
                    ready_times=ready,
                    byte_scale=self.byte_scale,
                    max_chunks=self._iteration_max_chunks(),
                )
                proceeded = False
                relays = []

            finished = sim.now
            compute_values = [v for v in ready.values() if v is not None]
            first_ready = iteration_start + min(compute_values)
            stats.append(
                IterationStats(
                    index=index,
                    compute_seconds_max=max(compute_values),
                    compute_seconds_min=min(compute_values),
                    comm_seconds=finished - first_ready,
                    iteration_seconds=finished - iteration_start,
                    proceeded=proceeded,
                    relays=relays,
                    faulty=faulty,
                )
            )
        return TrainingReport(
            stats=stats, global_batch=self.global_batch, reconstructions=self.reconstructions
        )

    # -- helpers ----------------------------------------------------------------------

    def _inputs(self) -> Dict[int, np.ndarray]:
        return {rank: self._payload[rank] for rank in self.participants}

    def _iteration_max_chunks(self) -> int:
        """Per-collective chunk cap.

        AlltoAll moves one flow per ordered rank pair; per-pair chunk
        pipelining is negligible (single-hop flows) while the simulated
        event count scales with pairs x chunks, so MoE-style workloads cap
        at 2 chunks per pair."""
        if self.model.primitive is Primitive.ALLTOALL:
            return min(self.config.max_chunks, 2)
        return self.config.max_chunks

    def _run_bucketed(self, strategy, ready: Dict[int, float]):
        """Overlapped per-bucket AllReduces (Fig. 3a).

        Bucket b's gradients are ready at compute x (b+1)/B on each
        worker; its AllReduce launches immediately and overlaps both the
        remaining backward compute and the other buckets' collectives.
        """
        from repro.runtime.collectives import launch_allreduce

        sim = self.topology.cluster.sim
        buckets = self.config.buckets
        pendings = []
        for bucket in range(buckets):
            fraction = (bucket + 1) / buckets
            bucket_ready = {rank: delay * fraction for rank, delay in ready.items()}
            pendings.append(
                launch_allreduce(
                    self.topology,
                    strategy,
                    self._inputs(),
                    ready_times=bucket_ready,
                    byte_scale=self.byte_scale / buckets,
                    max_chunks=max(4, self.config.max_chunks // buckets),
                    pipeline_stages=self.backend.pipelines_stages(),
                )
            )
        done = sim.all_of([p.done for p in pendings])
        sim.run_until_complete(done)
        return pendings[-1].result()

    def _plan(self):
        return self.backend.plan(
            self.model.primitive, self.model.tensor_bytes, self.participants
        )

    def _setup_contexts(self, strategy) -> None:
        contexts = self.contexts.plan_contexts(strategy)
        self.contexts.setup_all(contexts)
        self._active_contexts = contexts

    def _reconstruct(self, old_strategy):
        """Periodic profiling + re-synthesis + context set-up (Fig. 19c)."""
        self.backend.refresh()
        strategy = self._plan()
        self.reconstructions += 1
        if self._strategy_changed(old_strategy, strategy):
            self.contexts.teardown(self._active_contexts)
            self._setup_contexts(strategy)
        return strategy

    @staticmethod
    def _strategy_changed(a, b) -> bool:
        paths_a = [f.path for sc in a.subcollectives for f in sc.flows]
        paths_b = [f.path for sc in b.subcollectives for f in sc.flows]
        return paths_a != paths_b or [sc.chunk_size for sc in a.subcollectives] != [
            sc.chunk_size for sc in b.subcollectives
        ]

    def _handle_faults(self, faulty: List[int]) -> None:
        """Exclude faulty ranks and redistribute data (Sec. IV-C.2)."""
        survivors = [r for r in self.participants if r not in faulty]
        if not survivors:
            raise TrainingError("all workers faulty; training cannot continue")
        self.participants = survivors
        self.loader.redistribute(survivors)
        # Global batch is preserved by the loader; per-worker batches grew.
        self._payload = {r: self._payload[r] for r in survivors}
