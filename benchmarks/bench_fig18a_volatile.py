"""Fig. 18(a) — makespan under volatile network bandwidth.

The paper replays its cloud trace onto four A100 servers' NICs with tc,
amplifying the bandwidth swings by a factor x, trains 10^4 iterations with
a 500-iteration profiling period, and reports AdapCC's makespan reduction
over NCCL growing with x.

Reproduction note (see EXPERIMENTS.md): our NCCL model's single channel
under-saturates the NICs, which makes it largely *insensitive* to mild
shaping — so the NCCL-relative reduction does not grow here the way the
paper's does. The adaptivity payoff itself is isolated by a third series,
AdapCC with profiling disabled (the strategy stays synthesized from the
unshaped profile): the gap between static and re-profiling AdapCC widens
with volatility, which is the paper's underlying claim.
"""

import pytest

from repro.bench import Series, measure_training
from repro.hardware import make_homo_cluster
from repro.network.shaping import TraceShaper
from repro.network.traces import generate_cloud_trace
from repro.training import VGG16
from repro.training.trainer import TrainerConfig

AMPLIFICATIONS = [0.0, 1.0, 2.0, 3.0]
ITERATIONS = 24
PROFILE_PERIOD = 4


def shaper_factory(amplification):
    """Cross-traffic concentrated on two of the four servers.

    As in the paper's Fig. 2 scenario (and in shared clusters generally),
    contention hits *specific* servers: instances 1 and 2 replay deep
    regions of the cloud trace while 0 and 3 stay clean. The asymmetry is
    what re-profiling can route around; symmetric shaping would slow every
    strategy equally.
    """
    if amplification == 0.0:
        return None

    def factory(cluster):
        trace = generate_cloud_trace(duration=600.0, seed=5)
        return TraceShaper(
            cluster,
            trace,
            interval=0.5,
            amplification=amplification,
            instance_ids=[1, 2],
            offsets=[40.0, 250.0],
        )

    return factory


def measure():
    systems = {
        "adapcc": ("adapcc", PROFILE_PERIOD),
        "adapcc-static": ("adapcc", None),
        "nccl": ("nccl", None),
    }
    results = {}
    for x in AMPLIFICATIONS:
        for label, (backend, period) in systems.items():
            config = TrainerConfig(
                iterations=ITERATIONS,
                seed=41,
                profile_period=period,
            )
            report = measure_training(
                make_homo_cluster(num_servers=4),
                backend,
                VGG16,
                config,
                shaper_factory=shaper_factory(x),
            )
            results[(x, label)] = report.makespan
    return results


def test_fig18a_makespan_under_volatility(run_once):
    results = run_once(measure)

    series = Series(
        "Fig. 18a — VGG16 makespan vs bandwidth-volatility amplification x",
        "x",
        "makespan (s)",
    )
    series.set_x(AMPLIFICATIONS)
    for label in ("adapcc", "adapcc-static", "nccl"):
        series.add(label, [results[(x, label)] for x in AMPLIFICATIONS])
    reductions = [
        1.0 - results[(x, "adapcc")] / results[(x, "nccl")] for x in AMPLIFICATIONS
    ]
    series.add("reduction vs nccl", reductions)
    adaptivity = [
        results[(x, "adapcc-static")] / results[(x, "adapcc")] for x in AMPLIFICATIONS
    ]
    series.add("re-profiling gain", adaptivity)
    series.show()
    print(
        "paper: reduction grows with x; here NCCL's single channel is "
        "shaping-insensitive, so the adaptivity payoff is read off the "
        "re-profiling gain instead (see EXPERIMENTS.md)"
    )

    # Shapes: AdapCC stays well ahead of NCCL at every volatility level,
    # and re-profiling pays more the more volatile the network is.
    assert all(results[(x, "adapcc")] < results[(x, "nccl")] for x in AMPLIFICATIONS)
    assert all(r > 0.2 for r in reductions)
    assert adaptivity[-1] > adaptivity[0] - 1e-9
    assert adaptivity[-1] > 1.0
