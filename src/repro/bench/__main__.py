"""``python -m repro.bench`` — the Fig. 11–13 micro-benchmarks, aggregated.

Runs the same measurement loops as ``benchmarks/bench_fig11_reduce.py``,
``bench_fig12_allreduce.py`` and ``bench_fig13_alltoall.py`` (Reduce,
AllReduce and AlltoAll Algo.bw across the paper's A100/V100 testbed
configurations) and writes one machine-readable aggregate,
``BENCH_fig11_13.json``: every per-cell bandwidth plus the geomean
speedups the paper quotes. The simulator is deterministic, so the file
is byte-stable across runs of the same code — which is what makes it a
committable perf baseline. With ``--jobs N`` the 52 cells fan out across
worker processes (:mod:`repro.bench.sweep`) and the aggregate stays
byte-identical to a serial run. Full (non-quick) runs additionally carry
a top-level ``fleet`` block — the canonical two-job overlap replay's
per-job goodput, Jain fairness index, and attribution accuracy
(:func:`repro.bench.grid.measure_fleet`); older baselines without the
block still gate cleanly under ``--check``.

Modes:

* default — measure, print the three figure tables, write the aggregate
  (to ``REPRO_BENCH_DIR`` via the shared payload path when set, else to
  ``--output``); quick runs default to ``BENCH_fig11_13_quick.json`` and
  the writer refuses to overwrite a full baseline with a quick payload
  (or vice versa);
* ``--check [BASELINE]`` — measure and compare against a committed
  baseline instead of writing; any cell slower than the tolerance
  (default 10 %) exits non-zero, which is the CI perf-regression gate.
  Quick runs check against the quick baseline by default, and a
  quick/full mismatch between run and baseline is refused loudly;
* ``--budgets [FILE]`` — gate per-cell wall-clock against the committed
  ``bench-budgets.json`` (written by ``--write-budgets``), locking the
  incremental-solver/sweep speedup into CI;
* ``--quick`` — first configuration and two backends per figure only
  (fast smoke for local use);
* ``--figures fig11,fig13`` — restrict to a subset of figures.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional

# Grid definitions re-exported for compatibility: the grid itself lives in
# repro.bench.grid so the sweep workers can import it without re-running
# this CLI module.
from repro.bench.grid import (  # noqa: F401 - re-exports
    AGGREGATE_NAME,
    CONFIG_RECIPES,
    DEFAULT_TOLERANCE,
    FIGURES,
    TENSOR_BYTES,
    cell_id,
    cell_key,
    compare_payloads,
    measure_all,
    measure_figure,
    measure_fleet,
)
from repro.bench.report import Table, bench_dir, write_bench_payload
from repro.bench.sweep import SweepError, run_sweep

_CONFIG_RECIPES = CONFIG_RECIPES  # noqa: N816 - old private alias, kept for compat

#: Default aggregate paths for full and quick runs. Quick runs write (and
#: check against) their own baseline so a local smoke run can never
#: clobber the committed full baseline.
FULL_BASELINE = "BENCH_fig11_13.json"
QUICK_BASELINE = "BENCH_fig11_13_quick.json"

#: Default per-cell wall-clock budget file (``--budgets`` / ``--write-budgets``).
BUDGET_FILE = "bench-budgets.json"

#: Headroom multiplier applied by ``--write-budgets``: budgets lock in the
#: order of magnitude, not this machine's exact timings, so CI runners
#: with slower cores still pass while a solver regression still fails.
BUDGET_HEADROOM = 4.0

#: Floor for any single cell budget (seconds): tiny cells are dominated by
#: process/interpreter noise, not solver work.
BUDGET_FLOOR_SECONDS = 2.0

#: argparse sentinel for "--check with no explicit baseline path".
_DEFAULT_BASELINE = "__default__"


def render_tables(payload: Dict) -> None:
    """Print each measured figure as its paper-style table."""
    for name, figure in payload["figures"].items():
        table = Table(figure["title"], figure["backends"])
        for config in figure["configs"]:
            table.add_row(
                config,
                [
                    figure["cells"][cell_key(config, b)] / 1e9
                    for b in figure["backends"]
                ],
            )
        table.show()
        for baseline, speedup in figure["geomean_speedups"].items():
            print(f"{name}: adapcc vs {baseline} geomean {speedup:.2f}x")
        print()


def render_timings(timings: Dict[str, float]) -> None:
    """Print the wall-clock summary of one sweep."""
    total = sum(timings.values())
    slowest = sorted(timings.items(), key=lambda kv: (-kv[1], kv[0]))[:3]
    slow_text = ", ".join(f"{key} {seconds:.2f}s" for key, seconds in slowest)
    print(
        f"wall-clock: {total:.2f}s across {len(timings)} cells "
        f"(slowest: {slow_text})"
    )


def check_budgets(
    timings: Dict[str, float], budgets: Dict, quick: bool
) -> List[str]:
    """Budget violations of ``timings`` against a loaded budget file.

    Each measured cell must finish within its per-cell budget; a full run
    must additionally fit the total budget. Cells without a budget entry
    are reported too — a new grid cell needs a budget before it can ride
    through CI unmeasured.
    """
    problems: List[str] = []
    cells = budgets.get("cells", {})
    for key, wall_seconds in timings.items():
        budget = cells.get(key)
        if budget is None:
            problems.append(f"{key}: no wall-clock budget (re-run --write-budgets)")
        elif wall_seconds > budget:
            problems.append(
                f"{key}: took {wall_seconds:.2f}s, over its "
                f"{budget:.2f}s budget"
            )
    total_budget = budgets.get("total_seconds")
    if not quick and total_budget is not None:
        total = sum(timings.values())
        if total > total_budget:
            problems.append(
                f"total: {total:.2f}s exceeds the {total_budget:.2f}s budget"
            )
    return problems


def build_budgets(timings: Dict[str, float]) -> Dict:
    """A budget payload derived from measured timings plus headroom."""
    cells = {
        key: round(max(BUDGET_FLOOR_SECONDS, seconds * BUDGET_HEADROOM), 2)
        for key, seconds in sorted(timings.items())
    }
    total = round(
        max(BUDGET_FLOOR_SECONDS, sum(timings.values()) * BUDGET_HEADROOM), 2
    )
    return {
        "kind": "bench_budgets",
        "headroom": BUDGET_HEADROOM,
        "cells": cells,
        "total_seconds": total,
    }


def _load_json(path: Path) -> Optional[Dict]:
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None


def _write_aggregate(payload: Dict, output: str) -> Optional[Path]:
    """Write the aggregate, refusing a quick/full baseline collision.

    Returns the written path, or ``None`` if the write was refused.
    """
    quick = bool(payload.get("quick"))
    if bench_dir() is not None:
        name = AGGREGATE_NAME + ("_quick" if quick else "")
        return write_bench_payload(name, payload)
    path = Path(output)
    path.parent.mkdir(parents=True, exist_ok=True)
    existing = _load_json(path) if path.exists() else None
    if (
        existing is not None
        and existing.get("kind") == "fig11_13_aggregate"
        and bool(existing.get("quick")) != quick
    ):
        mode, have = ("quick", "full") if quick else ("full", "quick")
        print(
            f"FAIL bench: refusing to overwrite the {have} baseline "
            f"{path} with a {mode} run; pass an explicit --output"
        )
        return None
    path.write_text(
        json.dumps(payload, sort_keys=True, indent=2) + "\n", encoding="utf-8"
    )
    return path


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Run the Fig. 11-13 micro-benchmarks and write/check "
        "the aggregate BENCH_fig11_13.json baseline.",
    )
    parser.add_argument(
        "--check",
        nargs="?",
        const=_DEFAULT_BASELINE,
        default=False,
        metavar="BASELINE",
        help="compare against a committed baseline instead of writing "
        f"(default baseline: {FULL_BASELINE}, or {QUICK_BASELINE} "
        "with --quick)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help="fractional bandwidth loss tolerated by --check (default 0.10)",
    )
    parser.add_argument(
        "--output",
        default=None,
        metavar="PATH",
        help="aggregate output path when REPRO_BENCH_DIR is unset "
        f"(default: {FULL_BASELINE}, or {QUICK_BASELINE} with --quick); "
        "with --check, an explicit path additionally records the "
        "measured aggregate before gating",
    )
    parser.add_argument(
        "--figures",
        default=",".join(FIGURES),
        help="comma-separated subset of figures (fig11,fig12,fig13)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="first configuration + two backends per figure only",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the cell sweep (default 1 = serial; "
        "the aggregate is byte-identical either way)",
    )
    parser.add_argument(
        "--budgets",
        nargs="?",
        const=BUDGET_FILE,
        default=False,
        metavar="FILE",
        help="gate per-cell wall-clock against a budget file "
        f"(default: {BUDGET_FILE})",
    )
    parser.add_argument(
        "--write-budgets",
        nargs="?",
        const=BUDGET_FILE,
        default=False,
        metavar="FILE",
        help="write measured wall-clock budgets (with headroom) instead "
        "of gating against them",
    )
    args = parser.parse_args(argv)

    names = [n.strip() for n in args.figures.split(",") if n.strip()]
    unknown = [n for n in names if n not in FIGURES]
    if unknown:
        parser.error(f"unknown figures: {unknown} (have {list(FIGURES)})")
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")

    try:
        payload, timings = run_sweep(names, quick=args.quick, jobs=args.jobs)
    except SweepError as exc:
        print(f"FAIL bench: {exc}")
        return 1
    if not args.quick:
        # Full runs carry the fleet observability cell; quick smoke runs
        # skip its replay to stay fast.
        payload["fleet"] = measure_fleet()
    render_tables(payload)
    render_timings(timings)
    if "fleet" in payload:
        fleet = payload["fleet"]
        accuracy = fleet["attribution_accuracy"]
        goodput = ", ".join(
            f"{name} {value / 1e9:.2f} GB/s"
            for name, value in sorted(fleet["goodput"].items())
        )
        print(
            f"fleet: {goodput}; Jain {fleet['jain']:.4f}; attribution "
            f"precision {accuracy['precision']:.2f} / recall "
            f"{accuracy['recall']:.2f}"
        )

    problems: List[str] = []
    if args.budgets is not False:
        budget_path = Path(args.budgets)
        budgets = _load_json(budget_path) if budget_path.exists() else None
        if budgets is None:
            print(f"FAIL bench: budget file {budget_path} missing or unreadable")
            return 1
        problems.extend(check_budgets(timings, budgets, quick=args.quick))

    if args.check is not False:
        # With an explicit --output, check mode also records what it
        # measured — CI uploads that aggregate as a debugging artifact.
        if args.output is not None:
            written = _write_aggregate(payload, args.output)
            if written is None:
                return 1
            print(f"wrote {written}")
        baseline_name = args.check
        if baseline_name == _DEFAULT_BASELINE:
            baseline_name = QUICK_BASELINE if args.quick else FULL_BASELINE
        baseline_path = Path(baseline_name)
        if not baseline_path.exists():
            print(f"FAIL bench: baseline {baseline_path} does not exist")
            return 1
        baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
        if bool(baseline.get("quick")) != bool(payload.get("quick")):
            run_mode = "quick" if payload.get("quick") else "full"
            base_mode = "quick" if baseline.get("quick") else "full"
            print(
                f"FAIL bench: refusing to compare a {run_mode} run against "
                f"the {base_mode} baseline {baseline_path}"
            )
            return 1
        problems.extend(
            compare_payloads(payload, baseline, tolerance=args.tolerance)
        )
        if problems:
            print(f"FAIL bench: {len(problems)} problem(s) vs {baseline_path}")
            for line in problems:
                print(f"  {line}")
            return 1
        cells = sum(
            len(f.get("cells", {})) for f in baseline.get("figures", {}).values()
        )
        print(
            f"ok   bench: {cells} cells within {args.tolerance * 100:.0f}% "
            "of baseline"
        )
        if args.budgets is not False:
            print(f"ok   bench: {len(timings)} cells within wall-clock budgets")
        return 0

    if problems:
        print(f"FAIL bench: {len(problems)} budget violation(s)")
        for line in problems:
            print(f"  {line}")
        return 1
    if args.budgets is not False:
        print(f"ok   bench: {len(timings)} cells within wall-clock budgets")

    if args.write_budgets is not False:
        budget_path = Path(args.write_budgets)
        budget_path.write_text(
            json.dumps(build_budgets(timings), sort_keys=True, indent=2) + "\n",
            encoding="utf-8",
        )
        print(f"wrote {budget_path}")

    output = args.output
    if output is None:
        output = QUICK_BASELINE if args.quick else FULL_BASELINE
    path = _write_aggregate(payload, output)
    if path is None:
        return 1
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
