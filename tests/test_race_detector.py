"""Tests for the sim-determinism race detector (static + dynamic halves)."""

from pathlib import Path

import numpy as np
import pytest

from repro.analysis.__main__ import main as analysis_main
from repro.analysis.lint_source import lint_source
from repro.analysis.race import (
    check_run_against_dag,
    derive_chunk_dag,
    lint_determinism_hazards,
    unit_label,
)
from repro.bench.harness import BenchEnvironment
from repro.hardware.presets import make_config
from repro.synthesis.strategy import Primitive
from repro.telemetry.core import TelemetryHub, hub, set_hub
from repro.telemetry.export import parse_jsonl, to_jsonl

FIXTURES = Path(__file__).parent / "fixtures" / "hazards"


def by_code(findings):
    out = {}
    for f in findings:
        out.setdefault(f.code, []).append(f)
    return out


class TestStaticHazards:
    def test_clean_tree_has_zero_findings(self):
        assert lint_determinism_hazards() == []

    def test_every_seeded_fixture_is_flagged(self):
        found = by_code(lint_determinism_hazards(root=FIXTURES))
        assert set(found) == {
            "race-unordered-iteration",
            "race-unkeyed-timestamp",
            "race-float-accumulation",
        }
        unordered = {(f.file, f.line) for f in found["race-unordered-iteration"]}
        assert ("simulation/unordered_scheduling.py", 13) in unordered
        assert ("simulation/unordered_scheduling.py", 19) in unordered
        (heap,) = found["race-unkeyed-timestamp"]
        assert (heap.file, heap.line) == ("simulation/same_timestamp.py", 13)
        (accum,) = found["race-float-accumulation"]
        assert (accum.file, accum.line) == ("runtime/float_accumulation.py", 14)

    def test_fixed_forms_stay_clean(self):
        findings = lint_determinism_hazards(root=FIXTURES)
        flagged_lines = {(f.file, f.line) for f in findings}
        # The *_fixed functions in every fixture sit below the hazards.
        for file, fixed_line in [
            ("simulation/unordered_scheduling.py", 23),
            ("simulation/same_timestamp.py", 17),
            ("runtime/float_accumulation.py", 21),
        ]:
            assert (file, fixed_line) not in flagged_lines

    def test_hazards_are_warnings(self):
        for f in lint_determinism_hazards(root=FIXTURES):
            assert f.severity == "warning"

    def test_syntax_error_reported_as_error(self, tmp_path):
        pkg = tmp_path / "simulation"
        pkg.mkdir()
        (pkg / "broken.py").write_text("def oops(:\n")
        (finding,) = lint_determinism_hazards(root=tmp_path)
        assert finding.code == "syntax"
        assert finding.severity == "error"


class TestAliasedWallClockFixtures:
    def test_all_aliased_forms_flagged(self):
        flagged = [
            v for v in lint_source(root=FIXTURES) if v.check == "wall-clock"
        ]
        lines = {int(v.subject.rsplit(":", 1)[1]) for v in flagged}
        assert lines == {17, 21, 25, 29}  # time(), now(), t.time(), dt.now()

    def test_perf_counter_not_flagged(self):
        subjects = {v.subject for v in lint_source(root=FIXTURES)}
        assert not any(s.endswith(":32") for s in subjects)


@pytest.fixture(scope="module")
def executed_allreduce():
    """One instrumented 4-rank AllReduce: (strategy, parsed telemetry run)."""
    previous = hub()
    fresh = TelemetryHub(enabled=True)
    set_hub(fresh)
    try:
        env = BenchEnvironment(make_config([2, 2]), "adapcc")
        env.backend.verify = False
        inputs = {rank: np.full(512, float(rank + 1)) for rank in env.ranks}
        strategy = env.backend.plan(Primitive.ALLREDUCE, 2 * 1024 * 1024, env.ranks)
        env.backend.run(
            strategy, inputs, byte_scale=2 * 1024 * 1024 / (512 * 8.0)
        )
        run = parse_jsonl(to_jsonl(fresh))
    finally:
        set_hub(previous)
    return strategy, run


def _chunk_records(run):
    return [
        r
        for r in run.records
        if r.get("type") == "span"
        and r.get("cat") == "chunk"
        and r.get("name", "").endswith(":send")
    ]


class TestChunkDag:
    def test_unit_label_format_matches_executor_spans(self, executed_allreduce):
        assert unit_label(("flow", 3)) == "flow:3"
        _strategy, run = executed_allreduce
        units = {r["args"]["unit"] for r in _chunk_records(run)}
        assert units  # the executor stamps every chunk span
        assert all(":" in u for u in units)

    def test_dag_covers_both_allreduce_stages(self, executed_allreduce):
        strategy, _run = executed_allreduce
        graph = derive_chunk_dag(strategy)
        tags = {s.tag.split(":", 1)[0] for s in graph.senders}
        assert tags == {"allreduce-red", "allreduce-bc"}
        for sender in graph.senders:
            for group in graph.preds[sender]:
                assert group, f"empty AND-group for {sender}"
                for pred in group:
                    assert pred in graph.preds  # closed over known senders

    def test_broadcast_stage_depends_on_reduce_stage(self, executed_allreduce):
        strategy, _run = executed_allreduce
        graph = derive_chunk_dag(strategy)
        bcast_roots = [
            s
            for s in graph.senders
            if s.tag.startswith("allreduce-bc") and graph.preds[s]
        ]
        assert bcast_roots, "no broadcast sender waits on the reduce stage"
        assert any(
            pred.tag.startswith("allreduce-red")
            for s in bcast_roots
            for group in graph.preds[s]
            for pred in group
        )


class TestHappensBefore:
    def test_recorded_run_is_race_free(self, executed_allreduce):
        strategy, run = executed_allreduce
        assert check_run_against_dag(strategy, run) == []

    def test_corrupted_start_time_is_a_race(self, executed_allreduce):
        strategy, run = executed_allreduce
        # Rewind a chunk-1 span to start before its own chunk-0 ended:
        # same-sender chunks serialize, so this must be a race.
        victim = next(
            r for r in _chunk_records(run) if int(r["args"]["chunk"]) == 1
        )
        original = victim["start"]
        victim["start"] = -1.0
        try:
            findings = check_run_against_dag(strategy, run)
        finally:
            victim["start"] = original
        assert findings
        assert {f.code for f in findings} == {"race-happens-before"}
        assert any("VC" in f.message for f in findings)

    def test_missing_sender_is_a_coverage_error(self, executed_allreduce):
        from types import SimpleNamespace

        strategy, run = executed_allreduce
        sample = _chunk_records(run)[0]
        key = (sample["name"], sample["track"], sample["args"]["unit"])
        pruned = SimpleNamespace(
            records=[
                r
                for r in run.records
                if not (
                    r.get("type") == "span"
                    and (r.get("name"), r.get("track"), r.get("args", {}).get("unit"))
                    == key
                )
            ]
        )
        findings = check_run_against_dag(strategy, pruned)
        assert findings
        assert {f.code for f in findings} == {"race-dag-coverage"}

    def test_tolerance_permits_exact_boundary_handoffs(self, executed_allreduce):
        # Chunk pipelining hands off at identical simulated timestamps;
        # the checker's tolerance must not flag equality as a race.
        strategy, run = executed_allreduce
        assert check_run_against_dag(strategy, run, tol=0.0) == []


class TestRacePassCli:
    def test_races_pass_exits_zero_on_clean_tree(self, capsys):
        assert analysis_main(["--races", "--no-cache"]) == 0
        assert "ok   race detector" in capsys.readouterr().out
