"""Strategy evaluation: the paper's cost model, eqs. (2)–(6).

Given a candidate strategy (routed flows + chunk sizes + aggregation
flags), compute the predicted completion time of the collective:

* **link loads** N^m_{i,j} per the primitive-specific bandwidth-sharing
  rules — Reduce merges flows downstream of an aggregation point,
  Broadcast groups replicas of the same data, AlltoAll sums distinct
  flows;
* **shared bandwidth** 1/β̃ = 1/(β · Σ_m N^m) (eq. 3) — concurrent
  sub-collectives contend on every link they share;
* **chunk ready times** h^f_j (eq. 2) — store-and-forward per hop, with a
  synchronization ``max`` at aggregating nodes (plus the aggregation
  kernel's own cost, which the paper's executor pays and ours does too);
* **flow finish times** T_f = h_dst + ⌈S_m/C_m⌉·T_bottle (eqs. 5–6);
* **objective** max_f T_f (eq. 4).

The implementation generalizes the paper's per-primitive load formulas via
*traffic units*: a flow contributes an independent unit to every edge it
crosses until it passes an aggregating node, after which all flows merged
there continue as one shared unit. On reduce trees this reproduces the
paper's recursive formula exactly (tested); on arbitrary DAGs it remains
well-defined.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Tuple

from repro.errors import SynthesisError
from repro.synthesis.strategy import Primitive, Strategy, SubCollective
from repro.topology.graph import EdgeKind, LogicalTopology, NodeId, NodeKind

EdgeKey = Tuple[NodeId, NodeId]
#: A traffic unit: ("flow", flow index) before any aggregation,
#: ("agg", node) downstream of an aggregation at that node, or
#: ("bcast", src) for broadcast replicas.
Unit = Tuple


def edge_units(primitive: Primitive, sc: SubCollective) -> Dict[EdgeKey, set]:
    """Distinct traffic units per edge for one sub-collective.

    This is the paper's per-primitive load accounting (eq. 3's N^m_{i,j})
    in unit form: a flow contributes an independent ``("flow", idx)`` unit
    to every edge it crosses until it passes an aggregating node, after
    which all flows merged there continue as the shared ``("agg", node)``
    unit; broadcast replicas of the same shard group into one
    ``("bcast", src)`` unit. Public so that
    :mod:`repro.analysis.verify_strategy` checks the same algebra the
    evaluator prices.
    """
    units: Dict[EdgeKey, set] = defaultdict(set)
    for flow_idx, flow in enumerate(sc.flows):
        if primitive is Primitive.BROADCAST or primitive is Primitive.ALLGATHER:
            # Replicas of the same data group into one unit per source.
            unit: Unit = ("bcast", flow.src)
            for edge in flow.edges:
                units[edge].add(unit)
            continue
        unit = ("flow", flow_idx)
        if primitive.needs_aggregation and sc.aggregates_at(flow.path[0]):
            # Data originating at an aggregating node leaves merged with
            # the flows aggregated there — one shared unit, not two.
            unit = ("agg", flow.path[0])
        for i, j in flow.edges:
            units[(i, j)].add(unit)
            if primitive.needs_aggregation and sc.aggregates_at(j):
                unit = ("agg", j)
    return units


class EvaluationResult:
    """Objective plus per-flow and per-edge detail for inspection."""

    def __init__(self) -> None:
        self.objective: float = 0.0
        #: (subcollective index, flow position) -> T_f
        self.flow_times: Dict[Tuple[int, int], float] = {}
        #: (subcollective index, edge) -> N^m_{i,j}
        self.edge_loads: Dict[Tuple[int, EdgeKey], int] = {}
        #: edge -> total load across sub-collectives (Σ_m N^m)
        self.total_loads: Dict[EdgeKey, int] = {}


class StrategyEvaluator:
    """Evaluates strategies against one logical topology's current estimates."""

    def __init__(self, topology: LogicalTopology, include_kernel_time: bool = True):
        self.topology = topology
        self.include_kernel_time = include_kernel_time

    # -- public API ------------------------------------------------------------

    def evaluate(self, strategy: Strategy) -> EvaluationResult:
        """Full evaluation of a strategy; also validates edge existence."""
        result = EvaluationResult()
        units_by_sc = []
        for sc in strategy.subcollectives:
            units = self._edge_units(strategy.primitive, sc)
            units_by_sc.append(units)
            for edge_key, unit_set in units.items():
                result.edge_loads[(sc.index, edge_key)] = len(unit_set)
                result.total_loads[edge_key] = result.total_loads.get(edge_key, 0) + len(
                    unit_set
                )

        rates = self._edge_rates(result.total_loads)
        worst = 0.0
        for sc, units in zip(strategy.subcollectives, units_by_sc):
            flow_times = self._subcollective_times(strategy.primitive, sc, rates)
            for position, t in enumerate(flow_times):
                result.flow_times[(sc.index, position)] = t
                worst = max(worst, t)
        result.objective = worst
        return result

    def _edge_rates(self, total_loads: Dict[EdgeKey, int]) -> Dict[EdgeKey, float]:
        """Per-stream rate on every loaded edge (refines eq. 3).

        A stream's rate is bounded by three profiled quantities: the
        single-stream bandwidth b₁ (per-channel caps), and its fair share
        of the source NIC's and destination NIC's parallel-aggregate
        bandwidth across *all* network streams entering/leaving that NIC —
        logical edges sharing a NIC contend even though they are distinct
        edges, which eq. 3's per-edge accounting misses.
        """
        egress: Dict[NodeId, int] = defaultdict(int)
        ingress: Dict[NodeId, int] = defaultdict(int)
        for (i, j), load in total_loads.items():
            if self.topology.edge(i, j).kind is EdgeKind.NETWORK:
                egress[i] += load
                ingress[j] += load

        line_out: Dict[NodeId, float] = {}
        line_in: Dict[NodeId, float] = {}

        def node_line(node: NodeId, outgoing: bool) -> float:
            cache = line_out if outgoing else line_in
            if node not in cache:
                best = 0.0
                for (src, dst), edge in self.topology.edges.items():
                    if edge.kind is not EdgeKind.NETWORK:
                        continue
                    if (outgoing and src == node) or (not outgoing and dst == node):
                        best = max(best, edge.effective_parallel.bandwidth)
                cache[node] = best if best > 0 else float("inf")
            return cache[node]

        rates: Dict[EdgeKey, float] = {}
        for (i, j), load in total_loads.items():
            edge = self.topology.edge(i, j)
            single = edge.effective.bandwidth
            if edge.kind is EdgeKind.NETWORK:
                rate = min(
                    single,
                    node_line(i, outgoing=True) / max(1, egress[i]),
                    node_line(j, outgoing=False) / max(1, ingress[j]),
                )
            else:
                aggregate = edge.effective_parallel.bandwidth
                rate = min(single, aggregate / max(1, load))
            rates[(i, j)] = max(rate, 1e-9)
        return rates

    def objective(self, strategy: Strategy) -> float:
        """Shortcut: just the predicted completion time (eq. 4)."""
        return self.evaluate(strategy).objective

    # -- traffic units / link loads (eq. 3 rules) ---------------------------------

    def _edge_units(
        self, primitive: Primitive, sc: SubCollective
    ) -> Dict[EdgeKey, set]:
        """Distinct traffic units per edge (delegates to :func:`edge_units`)."""
        return edge_units(primitive, sc)

    # -- timing (eqs. 2, 5, 6) ------------------------------------------------------

    def _edge_chunk_time(
        self, edge_key: EdgeKey, chunk: float, rates: Dict[EdgeKey, float]
    ) -> float:
        """t_{i,j} = α + C/rate, rate from the shared-bandwidth model.

        This is eq. 2's per-chunk transfer time with eq. 3's equal-share
        contention refined by :meth:`_edge_rates`.
        """
        edge = self.topology.edge(*edge_key)
        ab = edge.effective
        rate = rates.get(edge_key)
        if rate is None:
            rate = ab.bandwidth if ab.bandwidth != float("inf") else 1e30
        return ab.alpha + chunk / rate

    def _kernel_time(self, node: NodeId, chunk: float) -> float:
        """Aggregation kernel cost on a GPU node (0 when disabled)."""
        if not self.include_kernel_time or node.kind is not NodeKind.GPU:
            return 0.0
        gpu = self.topology.cluster.gpu(node.index)
        return gpu.spec.reduce_kernel_time(chunk)

    def _subcollective_times(
        self,
        primitive: Primitive,
        sc: SubCollective,
        rates: Dict[EdgeKey, float],
    ) -> List[float]:
        """T_f for every flow of one sub-collective."""
        if sc.size == 0 or not sc.flows:
            return [0.0 for _ in sc.flows]
        if primitive.needs_aggregation:
            h, paces = self._ready_times_with_aggregation(sc, rates)
            return [
                h[(flow_idx, flow.dst)] + sc.num_chunks * paces[flow_idx]  # eq. 5
                for flow_idx, flow in enumerate(sc.flows)
            ]

        h = self._ready_times_independent(sc, rates)
        times: List[float] = []
        for flow_idx, flow in enumerate(sc.flows):
            bottleneck = 0.0
            for i, j in flow.edges:
                rise = h[(flow_idx, j)] - h[(flow_idx, i)]
                bottleneck = max(bottleneck, rise)  # eq. 6
            times.append(h[(flow_idx, flow.dst)] + sc.num_chunks * bottleneck)  # eq. 5
        return times

    def _ready_times_independent(
        self, sc: SubCollective, rates: Dict[EdgeKey, float]
    ) -> Dict[Tuple[int, NodeId], float]:
        """h for primitives without aggregation: per-flow path walk."""
        h: Dict[Tuple[int, NodeId], float] = {}
        for flow_idx, flow in enumerate(sc.flows):
            h[(flow_idx, flow.src)] = 0.0
            current = 0.0
            for i, j in flow.edges:
                current += self._edge_chunk_time((i, j), sc.chunk_size, rates)
                h[(flow_idx, j)] = current
        return h

    def _ready_times_with_aggregation(
        self, sc: SubCollective, rates: Dict[EdgeKey, float]
    ) -> Dict[Tuple[int, NodeId], float]:
        """h and per-flow steady-state paces for reduce-style sub-collectives.

        ``h`` follows eq. 2: an aggregating node's output time is the max
        arrival over every flow traversing it (waiting for the slowest
        chunk) plus the aggregation kernel. Aggregation nodes are resolved
        in dependency order (upstream aggregations first); dependency comes
        from path order — a flow visiting aggregation node v before u makes
        u depend on v.

        The returned per-flow *pace* refines eq. 6 for merged pipelines: a
        pipeline through an aggregation point advances at the max of its
        incoming flows' paces (and the kernel's per-chunk cost), rather
        than at the raw h-difference across the merge edge, which would
        double-count the one-time fill latency.
        """
        chunk = sc.chunk_size
        # Per flow, positions (path indices) of aggregating nodes.
        agg_positions: Dict[int, List[int]] = {}
        agg_nodes: set = set()
        for flow_idx, flow in enumerate(sc.flows):
            positions = [
                idx for idx, node in enumerate(flow.path) if sc.aggregates_at(node)
            ]
            agg_positions[flow_idx] = positions
            agg_nodes.update(flow.path[idx] for idx in positions)

        order = self._aggregation_order(sc, agg_positions)
        agg_out: Dict[NodeId, float] = {}

        def walk(flow_idx: int, stop_idx: int) -> float:
            """Arrival time of flow's chunk at path[stop_idx].

            Starts from the latest aggregation node before stop_idx (whose
            output time must already be resolved), or from the source.
            """
            flow = sc.flows[flow_idx]
            start_idx, t = 0, 0.0
            for idx in agg_positions[flow_idx]:
                # A flow *originating* at an aggregating node departs when
                # that aggregation is done (its data merges with the
                # children's chunks), hence idx == 0 counts too.
                if idx < stop_idx:
                    start_idx, t = idx, agg_out[flow.path[idx]]
            for p in range(start_idx + 1, stop_idx + 1):
                t += self._edge_chunk_time(
                    (flow.path[p - 1], flow.path[p]), chunk, rates
                )
            return t

        merged_pace: Dict[NodeId, float] = {}

        def pace_walk(flow_idx: int, stop_idx: int) -> float:
            """Steady-state per-chunk pace of a flow up to path[stop_idx]."""
            flow = sc.flows[flow_idx]
            start_idx, pace = 0, 0.0
            for idx in agg_positions[flow_idx]:
                if idx < stop_idx:
                    start_idx, pace = idx, merged_pace[flow.path[idx]]
            for p in range(start_idx + 1, stop_idx + 1):
                pace = max(
                    pace,
                    self._edge_chunk_time((flow.path[p - 1], flow.path[p]), chunk, rates),
                )
            return pace

        for node in order:
            arrivals: List[float] = []
            paces: List[float] = []
            for flow_idx, flow in enumerate(sc.flows):
                for idx in agg_positions[flow_idx]:
                    if idx > 0 and flow.path[idx] == node:
                        arrivals.append(walk(flow_idx, idx))
                        paces.append(pace_walk(flow_idx, idx))
            if arrivals:
                kernel = self._kernel_time(node, chunk)
                agg_out[node] = max(arrivals) + kernel
                merged_pace[node] = max(max(paces), kernel)
            else:
                agg_out[node] = 0.0
                merged_pace[node] = 0.0

        # Final per-(flow, node) ready times: walk each path, resetting to
        # the shared output time at every aggregation node (eq. 2's max).
        h: Dict[Tuple[int, NodeId], float] = {}
        flow_paces: Dict[int, float] = {}
        for flow_idx, flow in enumerate(sc.flows):
            t = agg_out[flow.path[0]] if sc.aggregates_at(flow.path[0]) else 0.0
            h[(flow_idx, flow.src)] = t
            for p in range(1, len(flow.path)):
                i, j = flow.path[p - 1], flow.path[p]
                if sc.aggregates_at(j):
                    t = agg_out[j]
                else:
                    t += self._edge_chunk_time((i, j), chunk, rates)
                h[(flow_idx, j)] = t
            last = len(flow.path) - 1
            if sc.aggregates_at(flow.path[last]):
                flow_paces[flow_idx] = merged_pace[flow.path[last]]
            else:
                flow_paces[flow_idx] = pace_walk(flow_idx, last)
        return h, flow_paces

    def _aggregation_order(
        self, sc: SubCollective, agg_positions: Dict[int, List[int]]
    ) -> List[NodeId]:
        """Dependency order over aggregation nodes (upstream first)."""
        deps: Dict[NodeId, set] = defaultdict(set)
        nodes: set = set()
        for flow_idx, positions in agg_positions.items():
            path = sc.flows[flow_idx].path
            for earlier, later in zip(positions, positions[1:]):
                deps[path[later]].add(path[earlier])
            nodes.update(path[idx] for idx in positions)
        order: List[NodeId] = []
        resolved: set = set()
        pending = sorted(nodes)
        while pending:
            progress = False
            remaining = []
            for node in pending:
                if deps[node] <= resolved:
                    order.append(node)
                    resolved.add(node)
                    progress = True
                else:
                    remaining.append(node)
            if not progress:
                raise SynthesisError(
                    "cyclic aggregation dependencies; reduce routing must be tree-like"
                )
            pending = remaining
        return order
