"""Strategy synthesis — the paper's core contribution (Sec. IV-D).

Given the profiled logical topology, the synthesizer picks, for each
collective primitive:

* **routing** — M parallel sub-collectives, each with its own communication
  graph (flow paths obeying flow conservation, eq. 1);
* **chunk size** — C_m for pipelined transmission (eqs. 5–6);
* **aggregation control** — whether each GPU node aggregates or relays
  (a_{m,g}, eq. 2);

minimizing the completion time of the whole collective (eq. 4) under
equal-share bandwidth contention (eq. 3).

The paper solves the resulting mixed-integer program with Gurobi; offline
we substitute a structured search (:mod:`repro.synthesis.optimizer`) over
routing families scored by an exact implementation of the paper's cost
equations (:mod:`repro.synthesis.evaluator`). See DESIGN.md §2.
"""

from repro.synthesis.strategy import (
    Flow,
    Primitive,
    Strategy,
    SubCollective,
    strategy_from_xml,
    strategy_to_xml,
)
from repro.synthesis.evaluator import StrategyEvaluator
from repro.synthesis.optimizer import Synthesizer, SynthesizerConfig

__all__ = [
    "Flow",
    "Primitive",
    "Strategy",
    "StrategyEvaluator",
    "SubCollective",
    "Synthesizer",
    "SynthesizerConfig",
    "strategy_from_xml",
    "strategy_to_xml",
]
