"""Tests for the :mod:`repro.analysis` passes (DESIGN.md §5).

Covers the strategy verifier (acceptance of real synthesizer/baseline
output, rejection of seeded corruptions), the executor's pre-flight
deadlock check, the fluid-trace linter (clean real runs, synthetic
violations), the AST source linter, and the ``python -m repro.analysis``
CLI.
"""

import numpy as np
import pytest

from repro.analysis import assert_valid, stage_unreachable, verification_enabled
from repro.analysis.lint_source import lint_source
from repro.analysis.lint_trace import lint_trace
from repro.analysis.verify_strategy import verify_strategy
from repro.analysis.__main__ import main as analysis_main
from repro.baselines import make_backend
from repro.bench.harness import BenchEnvironment
from repro.errors import CommunicatorError, StrategyVerificationError, SynthesisError
from repro.hardware import Cluster, make_hetero_cluster, make_homo_cluster
from repro.hardware.presets import make_config
from repro.relay.coordinator import AdaptiveAllReduce
from repro.runtime.executor import MODE_MERGE, ChunkPipeline
from repro.simulation import Simulator
from repro.simulation.records import TraceRecord, TraceRecorder
from repro.synthesis import Primitive, Synthesizer, SynthesizerConfig
from repro.synthesis.strategy import Flow, Strategy, SubCollective
from repro.topology import LogicalTopology
from repro.topology.graph import gpu_node


def homo_topology():
    sim = Simulator()
    cluster = Cluster(sim, make_homo_cluster(num_servers=2))
    return LogicalTopology.from_cluster(cluster)


def hetero_topology():
    sim = Simulator()
    cluster = Cluster(sim, make_hetero_cluster())
    return LogicalTopology.from_cluster(cluster)


def synthesize(topo, primitive=Primitive.REDUCE, ranks=8, root=None):
    return Synthesizer(topo).synthesize(primitive, 8_000_000.0, range(ranks), root=root)


def checks(violations):
    return {v.check for v in violations}


class TestVerifierAcceptsRealStrategies:
    @pytest.mark.parametrize(
        "primitive",
        [
            Primitive.REDUCE,
            Primitive.ALLREDUCE,
            Primitive.BROADCAST,
            Primitive.ALLGATHER,
            Primitive.REDUCE_SCATTER,
            Primitive.ALLTOALL,
        ],
    )
    def test_synthesizer_output_verifies(self, primitive):
        topo = homo_topology()
        strategy = synthesize(topo, primitive)
        assert verify_strategy(strategy, topo) == []
        assert_valid(strategy, topo)  # must not raise

    def test_hetero_allreduce_verifies(self):
        topo = hetero_topology()
        strategy = synthesize(topo, Primitive.ALLREDUCE, ranks=16)
        assert verify_strategy(strategy, topo) == []

    @pytest.mark.parametrize("backend_name", ["nccl", "msccl", "blink"])
    def test_baseline_output_verifies(self, backend_name):
        topo = homo_topology()
        backend = make_backend(backend_name, topo)
        backend.verify = False  # verify explicitly below
        strategy = backend.plan(Primitive.ALLREDUCE, 4_000_000.0, range(8))
        assert verify_strategy(strategy, topo) == []


class TestMutationsRejected:
    """Every corruption class must surface as a named violation."""

    def test_broken_path_contiguity(self):
        topo = homo_topology()
        strategy = synthesize(topo)
        mutated = False
        for sc in strategy.subcollectives:
            for flow in sc.flows:
                if len(flow.path) >= 4:  # crosses NICs: pop one hop
                    flow.path.pop(1)
                    mutated = True
                    break
            if mutated:
                break
        assert mutated, "expected at least one multi-hop flow"
        assert "path-contiguity" in checks(verify_strategy(strategy, topo))

    def test_truncated_path_endpoints(self):
        topo = homo_topology()
        strategy = synthesize(topo)
        strategy.subcollectives[0].flows[0].path.pop()
        found = checks(verify_strategy(strategy, topo))
        assert "path-endpoints" in found or "path-length" in found

    def test_root_stops_aggregating(self):
        topo = homo_topology()
        strategy = synthesize(topo)
        sc = strategy.subcollectives[0]
        sc.aggregation[sc.root] = False
        assert "root-aggregation" in checks(verify_strategy(strategy, topo))

    def test_aggregation_off_path(self):
        topo = homo_topology()
        strategy = synthesize(topo)
        strategy.subcollectives[0].aggregation[gpu_node(42)] = True
        assert "aggregation-off-path" in checks(verify_strategy(strategy, topo))

    def test_partition_sum_shrunk(self):
        topo = homo_topology()
        strategy = synthesize(topo)
        strategy.subcollectives[0].size *= 0.5
        assert "partition-sum" in checks(verify_strategy(strategy, topo))

    def test_root_placement_broken(self):
        topo = homo_topology()
        strategy = synthesize(topo)
        sc = strategy.subcollectives[0]
        ranks = [r for r in strategy.participants if gpu_node(r) != sc.root]
        sc.root = gpu_node(ranks[0])
        assert "root-placement" in checks(verify_strategy(strategy, topo))

    def test_nonparticipant_on_path(self):
        topo = homo_topology()
        strategy = synthesize(topo)
        victim = next(
            r for r in strategy.participants
            if gpu_node(r) != strategy.subcollectives[0].root
        )
        strategy.participants.remove(victim)
        assert "flow-conservation" in checks(verify_strategy(strategy, topo))

    def test_zero_chunk_size(self):
        topo = homo_topology()
        strategy = synthesize(topo)
        strategy.subcollectives[0].chunk_size = 0.0
        assert "chunk-size" in checks(verify_strategy(strategy, topo))

    def test_mutual_aggregation_cycle_deadlocks(self):
        """Two flows whose aggregation points wait on each other."""
        topo = homo_topology()
        g0, g1, g2 = gpu_node(0), gpu_node(1), gpu_node(2)
        sc = SubCollective(
            index=0,
            size=1000.0,
            chunk_size=250.0,
            flows=[
                Flow(g1, g0, [g1, g2, g0]),
                Flow(g2, g0, [g2, g1, g0]),
            ],
            aggregation={g0: True, g1: True, g2: True},
            root=g0,
        )
        strategy = Strategy(
            primitive=Primitive.REDUCE,
            tensor_size=1000.0,
            participants=[0, 1, 2],
            subcollectives=[sc],
        )
        found = checks(verify_strategy(strategy, topo))
        assert "deadlock" in found
        assert "aggregation-cycle" in found

    def test_assert_valid_raises_typed_error(self):
        topo = homo_topology()
        strategy = synthesize(topo)
        strategy.subcollectives[0].chunk_size = 0.0
        with pytest.raises(StrategyVerificationError) as excinfo:
            assert_valid(strategy, topo)
        assert isinstance(excinfo.value, SynthesisError)
        assert excinfo.value.violations


class TestExecutorPreflight:
    def _cyclic_pipeline(self, topo):
        g0, g1, g2 = gpu_node(0), gpu_node(1), gpu_node(2)
        agg = {g0, g1, g2}
        flows = [
            (0, Flow(g1, g0, [g1, g2, g0])),
            (1, Flow(g2, g0, [g2, g1, g0])),
        ]
        return ChunkPipeline(
            topo,
            flows,
            num_chunks=1,
            chunk_bytes=[100.0],
            chunk_source=lambda i, k: (topo.cluster.sim.timeout(0.0), lambda: np.zeros(1)),
            mode=MODE_MERGE,
            aggregates_at=lambda node: node in agg,
        )

    def test_validate_rejects_cyclic_aggregation(self):
        topo = homo_topology()
        pipeline = self._cyclic_pipeline(topo)
        with pytest.raises(CommunicatorError, match="deadlock"):
            pipeline.validate()

    def test_start_fails_fast_under_pytest(self):
        # verification_enabled() is True under pytest, so start() runs the
        # same pre-flight and refuses to build a stalling event graph.
        assert verification_enabled()
        topo = homo_topology()
        pipeline = self._cyclic_pipeline(topo)
        with pytest.raises(CommunicatorError, match="deadlock"):
            pipeline.start()

    def test_stage_unreachable_empty_for_chain(self):
        g0, g1, g2 = gpu_node(0), gpu_node(1), gpu_node(2)
        unreachable = stage_unreachable(
            [(0, [g2, g1, g0]), (1, [g1, g0])],
            MODE_MERGE,
            lambda node: node in (g1, g0),
        )
        assert unreachable == []


class TestCoordinatorVerification:
    def test_adaptive_run_rejects_corrupt_strategy(self):
        topo = homo_topology()
        strategy = synthesize(topo, Primitive.ALLREDUCE)
        strategy.subcollectives[0].chunk_size = 0.0
        adaptive = AdaptiveAllReduce(topo)
        inputs = {r: np.ones(64) for r in range(8)}
        ready = {r: 0.0 for r in range(8)}
        with pytest.raises(StrategyVerificationError):
            adaptive.run(strategy, inputs, ready)

    def test_adaptive_run_verifies_once_per_strategy(self):
        topo = homo_topology()
        strategy = synthesize(topo, Primitive.ALLREDUCE)
        adaptive = AdaptiveAllReduce(topo)
        inputs = {r: np.ones(64) for r in range(8)}
        ready = {r: 0.0 for r in range(8)}
        adaptive.run(strategy, inputs, ready)
        assert id(strategy) in adaptive._verified
        adaptive.run(strategy, inputs, ready)  # cached: no re-verification


def rec(time, kind, **payload):
    return TraceRecord(time, kind, "test", payload)


class TestTraceLinter:
    def test_real_run_is_clean(self):
        env = BenchEnvironment(make_config([2, 2]), "adapcc")
        recorder = TraceRecorder()
        env.cluster.network.attach_recorder(recorder)
        inputs = {rank: np.full(256, float(rank + 1)) for rank in env.ranks}
        strategy = env.backend.plan(Primitive.ALLREDUCE, 256 * 8.0, env.ranks)
        env.backend.run(strategy, inputs)
        assert len(recorder.records) > 0
        assert lint_trace(recorder.records) == []

    def test_over_capacity_flagged(self):
        records = [
            rec(0.0, "net-flow-start", flow=1, tag="f1", size=100.0),
            rec(
                0.0,
                "net-rates",
                flows=[(1, "f1", 200.0, 100.0, ((7, 1),))],
                links=[(7, "lnk", 100.0, 100.0)],
            ),
            rec(0.5, "net-flow-end", flow=1, tag="f1", size=100.0),
        ]
        found = checks(lint_trace(records))
        assert "link-capacity" in found
        assert "stream-cap" in found

    def test_byte_conservation_flagged(self):
        # Flow sized 100 B moving at its 50 B/s cap for 1 s: only 50 B.
        records = [
            rec(0.0, "net-flow-start", flow=1, tag="f1", size=100.0),
            rec(
                0.0,
                "net-rates",
                flows=[(1, "f1", 50.0, 100.0, ((7, 1),))],
                links=[(7, "lnk", 100.0, 50.0)],
            ),
            rec(1.0, "net-flow-end", flow=1, tag="f1", size=100.0),
        ]
        assert "byte-conservation" in checks(lint_trace(records))

    def test_unfair_allocation_flagged(self):
        # Rate far below cap with no saturated link: not max-min fair.
        records = [
            rec(0.0, "net-flow-start", flow=1, tag="f1", size=100.0),
            rec(
                0.0,
                "net-rates",
                flows=[(1, "f1", 10.0, 100.0, ((7, 1),))],
                links=[(7, "lnk", 1000.0, 1000.0)],
            ),
            rec(10.0, "net-flow-end", flow=1, tag="f1", size=100.0),
        ]
        assert "max-min" in checks(lint_trace(records))

    def test_event_order_flagged(self):
        records = [
            rec(1.0, "net-flow-end", flow=9, tag="ghost", size=10.0),
            rec(0.5, "net-flow-start", flow=8, tag="late", size=10.0),
        ]
        found = checks(lint_trace(records))
        assert found == {"event-order"}

    def test_fair_saturated_allocation_is_clean(self):
        # Two flows split a 100 B/s link evenly and finish together.
        records = [
            rec(0.0, "net-flow-start", flow=1, tag="a", size=50.0),
            rec(0.0, "net-flow-start", flow=2, tag="b", size=50.0),
            rec(
                0.0,
                "net-rates",
                flows=[
                    (1, "a", 50.0, 50.0, ((7, 1),)),
                    (2, "b", 50.0, 50.0, ((7, 1),)),
                ],
                links=[(7, "lnk", 100.0, 100.0)],
            ),
            rec(1.0, "net-flow-end", flow=1, tag="a", size=50.0),
            rec(1.0, "net-flow-end", flow=2, tag="b", size=50.0),
        ]
        assert lint_trace(records) == []


class TestSourceLinter:
    def test_repro_tree_is_clean(self):
        assert lint_source() == []

    def test_random_import_flagged(self, tmp_path):
        bad = tmp_path / "mod.py"
        bad.write_text("import random\nx = random.random()\n")
        assert "ambient-random" in checks(lint_source(root=tmp_path))

    def test_numpy_global_seed_flagged(self, tmp_path):
        bad = tmp_path / "mod.py"
        bad.write_text("import numpy as np\nnp.random.seed(0)\n")
        assert "ambient-random" in checks(lint_source(root=tmp_path))

    def test_wall_clock_in_simulation_flagged(self, tmp_path):
        pkg = tmp_path / "simulation"
        pkg.mkdir()
        bad = pkg / "mod.py"
        bad.write_text("import time\n\ndef stamp():\n    return time.time()\n")
        assert "wall-clock" in checks(lint_source(root=tmp_path))

    def test_wall_clock_from_import_flagged(self, tmp_path):
        # Regression: `from time import time` evaded the attribute-only match.
        pkg = tmp_path / "runtime"
        pkg.mkdir()
        bad = pkg / "mod.py"
        bad.write_text("from time import time\n\ndef stamp():\n    return time()\n")
        assert "wall-clock" in checks(lint_source(root=tmp_path))

    def test_wall_clock_aliased_imports_flagged(self, tmp_path):
        # Regression: aliased module and function imports evaded the match.
        pkg = tmp_path / "observe"
        pkg.mkdir()
        bad = pkg / "mod.py"
        bad.write_text(
            "import time as t\n"
            "from time import time as now\n\n"
            "def stamp():\n"
            "    return t.time() + now()\n"
        )
        found = [v for v in lint_source(root=tmp_path) if v.check == "wall-clock"]
        assert len(found) == 2

    def test_wall_clock_aliased_outside_deterministic_dirs_allowed(self, tmp_path):
        ok = tmp_path / "cli.py"
        ok.write_text("from time import time as now\n\ndef stamp():\n    return now()\n")
        assert lint_source(root=tmp_path) == []

    def test_wall_clock_outside_simulation_allowed(self, tmp_path):
        ok = tmp_path / "cli.py"
        ok.write_text("import time\n\ndef stamp():\n    return time.time()\n")
        assert lint_source(root=tmp_path) == []

    def test_perf_counter_in_simulation_allowed(self, tmp_path):
        pkg = tmp_path / "synthesis"
        pkg.mkdir()
        ok = pkg / "mod.py"
        ok.write_text("import time\n\ndef stamp():\n    return time.perf_counter()\n")
        assert lint_source(root=tmp_path) == []

    def test_unit_suffix_flagged(self, tmp_path):
        bad = tmp_path / "mod.py"
        bad.write_text("TIMEOUT_MS = 5\n\ndef wait(delay_ms, speed_gbps):\n    pass\n")
        found = [v for v in lint_source(root=tmp_path) if v.check == "unit-suffix"]
        assert len(found) == 3

    def test_private_names_exempt(self, tmp_path):
        ok = tmp_path / "mod.py"
        ok.write_text("_TIMEOUT_MS = 5\n\ndef _wait(delay_ms):\n    pass\n")
        assert lint_source(root=tmp_path) == []


class TestSessionAndBackendHooks:
    def test_backend_plan_verifies_under_pytest(self):
        topo = homo_topology()
        backend = make_backend("nccl", topo)
        assert backend.verify is None  # defers to the pytest env default
        backend.plan(Primitive.ALLREDUCE, 1024.0, range(8))  # must not raise

    def test_backend_plan_verification_can_be_forced_off(self):
        topo = homo_topology()
        backend = make_backend("nccl", topo)
        backend.verify = False
        backend.plan(Primitive.ALLREDUCE, 1024.0, range(8))

    def test_env_var_overrides(self, monkeypatch):
        monkeypatch.setenv("REPRO_VERIFY", "0")
        assert not verification_enabled()
        monkeypatch.setenv("REPRO_VERIFY", "1")
        assert verification_enabled()
        monkeypatch.delenv("REPRO_VERIFY")
        assert verification_enabled()  # pytest fallback
        assert verification_enabled(False) is False  # explicit wins
        assert verification_enabled(True) is True


class TestCli:
    def test_source_pass_exits_zero(self, capsys):
        assert analysis_main(["--source"]) == 0
        out = capsys.readouterr().out
        assert "ok   source lint" in out

    def test_trace_pass_exits_zero(self, capsys):
        assert analysis_main(["--traces"]) == 0
        assert "ok   trace lint" in capsys.readouterr().out
