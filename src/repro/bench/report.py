"""Table/series formatting and ``BENCH_*.json`` payloads for benchmarks.

Each benchmark prints the same rows/series its paper figure reports; these
helpers keep the formatting uniform and parseable. When ``REPRO_BENCH_DIR``
is set, the measurement helpers additionally persist one machine-readable
``BENCH_<name>.json`` payload per measurement through
:func:`write_bench_payload` — the perf-trajectory record (iteration time,
bytes on the busiest link, relay-phase counts, telemetry metrics snapshot)
that CI and the ROADMAP's optimization PRs diff across commits.
"""

from __future__ import annotations

import json
import math
import os
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

#: Environment variable naming the directory BENCH payloads are written to.
#: Unset (the default) disables payload emission entirely.
ENV_BENCH_DIR = "REPRO_BENCH_DIR"

#: Per-process count of payloads written under each name, so repeated
#: measurements with the same derived name get deterministic ``_2``/``_3``
#: suffixes instead of silently overwriting one another.
_payload_counts: Dict[str, int] = {}

#: When set, :func:`write_bench_payload` appends ``(name, payload)`` here
#: instead of writing files. Sweep worker processes run their cells under
#: :func:`captured_bench_payloads` and ship the records back to the
#: parent, which replays them through :func:`write_bench_payload` in
#: canonical serial order — so collision suffixes (``_2``/``_3``) land on
#: exactly the payloads a serial run would have given them, and the
#: payload directory is byte-identical regardless of ``--jobs``.
_capture_sink: Optional[List[Tuple[str, Dict]]] = None


def bench_dir() -> Optional[Path]:
    """The BENCH payload directory, or ``None`` when emission is off."""
    value = os.environ.get(ENV_BENCH_DIR, "")
    return Path(value) if value else None


def write_bench_payload(name: str, payload: Dict) -> Optional[Path]:
    """Persist one measurement payload as ``BENCH_<name>.json``.

    No-op returning ``None`` unless ``REPRO_BENCH_DIR`` is set. The JSON is
    key-sorted so same-seed runs write byte-identical payloads, and a
    repeated ``name`` within one process gets a numeric suffix rather than
    clobbering the earlier measurement. Under
    :func:`captured_bench_payloads` the record is captured instead of
    written (the capturing caller replays it later).
    """
    directory = bench_dir()
    if directory is None:
        return None
    if _capture_sink is not None:
        _capture_sink.append((name, payload))
        return None
    directory.mkdir(parents=True, exist_ok=True)
    count = _payload_counts.get(name, 0) + 1
    _payload_counts[name] = count
    suffix = "" if count == 1 else f"_{count}"
    path = directory / f"BENCH_{name}{suffix}.json"
    path.write_text(
        json.dumps(payload, sort_keys=True, indent=2) + "\n", encoding="utf-8"
    )
    return path


@contextmanager
def captured_bench_payloads(records: List[Tuple[str, Dict]]):
    """Capture :func:`write_bench_payload` calls into ``records``.

    While the context is active (and ``REPRO_BENCH_DIR`` is set), payload
    writes append ``(name, payload)`` to ``records`` instead of touching
    the filesystem or the per-name collision counters. Sweep workers wrap
    their cell measurement in this so the parent process can replay every
    payload in canonical order.
    """
    global _capture_sink
    previous = _capture_sink
    _capture_sink = records
    try:
        yield records
    finally:
        _capture_sink = previous


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean (the paper's aggregate for per-config speedups)."""
    values = [v for v in values if v > 0]
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


@dataclass
class Table:
    """A printable table: one row per configuration, one column per system."""

    title: str
    columns: List[str]
    rows: List[List[str]] = field(default_factory=list)

    def add_row(self, label: str, values: Sequence) -> None:
        """Append one row; floats are formatted to three decimals."""
        formatted = [label] + [
            f"{v:.3f}" if isinstance(v, float) else str(v) for v in values
        ]
        self.rows.append(formatted)

    def render(self) -> str:
        """The table as an aligned text block."""
        header = ["config"] + self.columns
        widths = [
            max(len(str(row[i])) for row in [header] + self.rows)
            for i in range(len(header))
        ]
        lines = [self.title, "-" * len(self.title)]
        lines.append("  ".join(str(h).ljust(w) for h, w in zip(header, widths)))
        for row in self.rows:
            lines.append("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def show(self) -> None:
        """Print the table followed by a blank line."""
        print(self.render())
        print()


@dataclass
class Series:
    """A printable (x, y) series, one per system, for line-plot figures."""

    title: str
    x_label: str
    y_label: str
    data: Dict[str, List] = field(default_factory=dict)
    x_values: List = field(default_factory=list)

    def set_x(self, values: Sequence) -> None:
        """Set the shared x axis."""
        self.x_values = list(values)

    def add(self, name: str, values: Sequence[float]) -> None:
        """Add one named series."""
        self.data[name] = list(values)

    def render(self) -> str:
        """The series block as text."""
        lines = [self.title, "-" * len(self.title)]
        lines.append(f"{self.x_label}: " + "  ".join(str(x) for x in self.x_values))
        for name, values in self.data.items():
            formatted = "  ".join(
                f"{v:.4g}" if isinstance(v, float) else str(v) for v in values
            )
            lines.append(f"{name} ({self.y_label}): {formatted}")
        return "\n".join(lines)

    def show(self) -> None:
        """Print the series followed by a blank line."""
        print(self.render())
        print()
