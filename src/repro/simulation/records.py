"""Lightweight trace recording for simulation runs.

Benchmarks and tests attach a :class:`TraceRecorder` to the objects they
care about; records are plain tuples so post-processing stays trivial
(numpy-friendly, no schema to maintain).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Tuple


@dataclass
class TraceRecord:
    """One timestamped observation."""

    time: float
    kind: str
    subject: str
    payload: Dict[str, Any] = field(default_factory=dict)


class TraceRecorder:
    """Append-only collector of :class:`TraceRecord` entries."""

    def __init__(self) -> None:
        self.records: List[TraceRecord] = []

    def record(self, time: float, kind: str, subject: str, **payload: Any) -> None:
        """Append one observation."""
        self.records.append(TraceRecord(time, kind, subject, payload))

    def of_kind(self, kind: str) -> List[TraceRecord]:
        """All records with the given kind, in time order."""
        return [r for r in self.records if r.kind == kind]

    def series(self, kind: str, key: str) -> Tuple[List[float], List[Any]]:
        """(times, values) for ``payload[key]`` across records of ``kind``."""
        times: List[float] = []
        values: List[Any] = []
        for r in self.of_kind(kind):
            times.append(r.time)
            values.append(r.payload[key])
        return times, values

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def __len__(self) -> int:
        return len(self.records)
