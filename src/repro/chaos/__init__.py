"""Seeded, schedule-driven fault injection for the AdapCC reproduction.

One :class:`FaultPlan` is a declarative, seed-replayable schedule of
stragglers, crashes, link degradations, message faults, coordinator-role
crashes and control-channel partitions; the
:class:`ChaosInjector` applies it to a simulated cluster, and the
:class:`ChaosRunner` drives it through the full relay/recovery stack.
"""

from repro.chaos.injector import ChaosInjector
from repro.chaos.plan import (
    DECIDE_PHASE,
    DROP,
    DUPLICATE,
    TRANSITION_PHASE,
    CoordinatorCrashFault,
    CrashFault,
    FaultPlan,
    LinkFault,
    MessageFault,
    PartitionFault,
    StragglerFault,
)
from repro.chaos.runner import ChaosRunner, ChaosRunReport, IterationOutcome

__all__ = [
    "DECIDE_PHASE",
    "DROP",
    "DUPLICATE",
    "TRANSITION_PHASE",
    "ChaosInjector",
    "ChaosRunReport",
    "ChaosRunner",
    "CoordinatorCrashFault",
    "CrashFault",
    "FaultPlan",
    "IterationOutcome",
    "LinkFault",
    "MessageFault",
    "PartitionFault",
    "StragglerFault",
]
