"""Adaptive relay control (paper Sec. IV-C).

The coordinator on rank 0 watches per-iteration tensor-ready times and
runs a break-even ski-rental rule to decide between waiting for all
workers and triggering a *partial* collective among the ready ones, with
non-ready workers acting as relays (phase 1) followed by aggregation of
the late tensors (phase 2). The two-phase result is bit-identical to a
full collective — only the schedule changes.
"""

from repro.relay.ski_rental import BreakEvenPolicy, estimate_collective_seconds
from repro.relay.behavior import BehaviorTuple, behavior_tuples
from repro.relay.coordinator import AdaptiveAllReduce, AdaptiveResult, Coordinator
from repro.relay.faults import FaultDetector, FaultReport

__all__ = [
    "AdaptiveAllReduce",
    "AdaptiveResult",
    "BehaviorTuple",
    "BreakEvenPolicy",
    "Coordinator",
    "FaultDetector",
    "FaultReport",
    "behavior_tuples",
    "estimate_collective_seconds",
]
