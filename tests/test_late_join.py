"""Tests for mid-phase-1 late join (Sec. IV-C: relay chunks with the same
offset join the ongoing aggregation; phase 2 carries only the rest)."""

import numpy as np
import pytest

from repro.hardware import Cluster, make_homo_cluster
from repro.relay import AdaptiveAllReduce
from repro.runtime import run_allreduce
from repro.simulation import Simulator
from repro.synthesis import Primitive, Synthesizer, SynthesizerConfig
from repro.topology import LogicalTopology


def make_env(**cfg):
    sim = Simulator()
    cluster = Cluster(sim, make_homo_cluster(num_servers=2))
    topo = LogicalTopology.from_cluster(cluster)
    return topo, Synthesizer(topo, SynthesizerConfig(**cfg) if cfg else None)


def make_inputs(ranks, length, seed=0):
    rng = np.random.default_rng(seed)
    return {r: rng.integers(0, 9, length).astype(np.float64) for r in ranks}


class TestLateJoinExecutor:
    #: Rank 6 leads one sub-collective in this setup (leaders rotate per
    #: sub-collective), so an aggregation runs on its GPU for relays'
    #: chunks to join; a never-leader rank could only contribute via
    #: phase 2.
    STRAGGLER = 6

    def run_with_late(self, late_delay, length=1 << 14, scale=2000.0):
        """Phase-1 AllReduce where one rank is a relay becoming ready after
        ``late_delay`` seconds."""
        topo, synth = make_env()
        ranks = list(range(8))
        inputs = make_inputs(ranks, length)
        strategy = synth.synthesize(Primitive.ALLREDUCE, length * 8 * scale, ranks)
        s = self.STRAGGLER
        active = [r for r in ranks if r != s]
        result = run_allreduce(
            topo,
            strategy,
            inputs,
            active_ranks=active,
            ready_times={s: late_delay},
            byte_scale=scale,
            late_ranks=[s],
        )
        return ranks, inputs, result

    def test_never_ready_relay_contributes_nothing(self):
        s = self.STRAGGLER
        ranks, inputs, result = self.run_with_late(late_delay=100.0)
        expected = sum(inputs[r] for r in ranks if r != s)
        np.testing.assert_array_equal(result.outputs[0], expected)
        assert s not in result.included_chunks

    def test_immediately_ready_relay_fully_joins(self):
        """A relay that is ready at t=0 (e.g. the coordinator raced it)
        joins every chunk — the result equals a full AllReduce."""
        s = self.STRAGGLER
        ranks, inputs, result = self.run_with_late(late_delay=0.0)
        included = result.included_chunks.get(s, [])
        assert included, "rank 6 leads a sub-collective; chunks must join"
        covered = sum(end - start for start, end in included)
        # The relay's chunks that joined are included in the sum.
        expected = sum(inputs[r] for r in ranks if r != s).astype(np.float64)
        for start, end in included:
            expected[start:end] += inputs[s][start:end]
        np.testing.assert_array_equal(result.outputs[0], expected)
        assert covered > 0

    def test_partial_join_is_prefix_consistent(self):
        """A mid-flight relay contributes exactly the chunk ranges reported
        in included_chunks — no more, no less (bit-exact accounting)."""
        s = self.STRAGGLER
        ranks, inputs, result = self.run_with_late(late_delay=0.004)
        included = result.included_chunks.get(s, [])
        expected = sum(inputs[r] for r in ranks if r != s).astype(np.float64)
        for start, end in included:
            expected[start:end] += inputs[s][start:end]
        np.testing.assert_array_equal(result.outputs[0], expected)


class TestLateJoinTwoPhase:
    @pytest.mark.parametrize("late_delay", [0.012, 0.03, 0.2])
    def test_two_phase_exact_for_any_join_timing(self, late_delay):
        """Whatever fraction of chunks late-join, phase1+phase2 equals the
        full sum bit for bit."""
        topo, synth = make_env()
        ranks = list(range(8))
        length = 1 << 14
        inputs = make_inputs(ranks, length, seed=3)
        scale = 2000.0
        strategy = synth.synthesize(Primitive.ALLREDUCE, length * 8 * scale, ranks)
        adaptive = AdaptiveAllReduce(topo)
        ready = {r: 0.0 for r in ranks}
        ready[6] = late_delay
        result = adaptive.run(strategy, inputs, ready, byte_scale=scale)
        expected = sum(inputs[r] for r in ranks)
        for rank in ranks:
            np.testing.assert_array_equal(result.outputs[rank], expected)

    def test_late_join_shrinks_phase2(self):
        """When most chunks late-join phase 1, phase 2 moves less data and
        finishes faster than when nothing joins."""
        def run_case(delay):
            topo, synth = make_env()
            ranks = list(range(8))
            length = 1 << 14
            inputs = make_inputs(ranks, length, seed=4)
            scale = 4000.0
            strategy = synth.synthesize(Primitive.ALLREDUCE, length * 8 * scale, ranks)
            adaptive = AdaptiveAllReduce(topo)
            ready = {r: 0.0 for r in ranks}
            ready[6] = delay
            result = adaptive.run(strategy, inputs, ready, byte_scale=scale)
            return result

        barely_late = run_case(0.055)  # ready just after the trigger
        very_late = run_case(0.5)  # ready long after phase 1 ended
        if not barely_late.decision.proceed or not very_late.decision.proceed:
            pytest.skip("coordinator chose to wait; no phase 2 to compare")
        assert barely_late.phase2_seconds < very_late.phase2_seconds
