"""Probe plans: the (n, s) settings used to fit α–β per link.

The paper sends a piece of size s, n times (cost ``n(α+βs)``), then the
grouped n·s bytes at once (cost ``α+βns``), under several (n, s) settings
(Sec. IV-B). A :class:`ProbePlan` captures those settings; the profiler
turns each into two measurements.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.errors import ProfilingError
from repro.hardware.links import KB, MB


@dataclass(frozen=True)
class ProbePlan:
    """A list of (n, piece-size) probe settings."""

    settings: Tuple[Tuple[int, float], ...]

    def __post_init__(self) -> None:
        if not self.settings:
            raise ProfilingError("probe plan needs at least one setting")
        for n, s in self.settings:
            if n < 1 or s <= 0:
                raise ProfilingError(f"invalid probe setting (n={n}, s={s})")
        # The fit needs at least two linearly independent (n, n*s) rows; a
        # plan with a grouped companion per setting always satisfies this
        # when any setting has n >= 2.
        if all(n == 1 for n, _ in self.settings):
            raise ProfilingError("probe plan needs a setting with n >= 2 to separate alpha")

    @property
    def total_probe_bytes(self) -> float:
        """Bytes moved per profiled link (piecewise + grouped passes)."""
        return sum(2 * n * s for n, s in self.settings)


#: Default plan: small pieces expose α, the grouped megabyte sends expose β.
DEFAULT_PROBE_PLAN = ProbePlan(settings=((8, 64 * KB), (4, 512 * KB), (2, 2 * MB)))
