"""Data-parallel training on a heterogeneous cluster: AdapCC vs baselines.

Reproduces the flavour of the paper's Fig. 14: train ViT (208 MB
gradients) on 2x4xA100 + 2x4xV100 with each communication backend and
compare per-iteration communication time and training throughput. The
V100 workers' slower compute makes every iteration skewed, which is where
AdapCC's relay control pays off on top of its better graphs.

Run:  python examples/heterogeneous_training.py
"""

from repro.bench import measure_training
from repro.hardware import make_hetero_cluster
from repro.training import VIT
from repro.training.trainer import TrainerConfig


def main() -> None:
    print("== ViT on 2x4xA100 + 2x4xV100, 10 iterations per backend ==\n")
    specs = make_hetero_cluster()
    config = TrainerConfig(iterations=10, seed=11)

    rows = []
    for backend in ("adapcc", "nccl", "msccl", "blink"):
        report = measure_training(specs, backend, VIT, config)
        rows.append((backend, report))

    print(f"{'backend':10s} {'comm (ms)':>10s} {'iter (ms)':>10s} {'throughput (samples/s)':>24s}")
    adapcc_report = rows[0][1]
    for backend, report in rows:
        print(
            f"{backend:10s} {report.mean_comm_seconds * 1e3:10.2f} "
            f"{report.mean_iteration_seconds * 1e3:10.2f} {report.throughput:24.1f}"
        )
    print()
    for backend, report in rows[1:]:
        speedup = adapcc_report.throughput / report.throughput
        print(f"AdapCC throughput vs {backend}: {speedup:.2f}x")

    relays = [stat.relays for stat in adapcc_report.stats if stat.relays]
    proceeded = sum(1 for stat in adapcc_report.stats if stat.proceeded)
    print(
        f"\nAdapCC relay control: proceeded (partial comm) in {proceeded}/"
        f"{adapcc_report.iterations} iterations; relay picks: {relays}"
    )


if __name__ == "__main__":
    main()
