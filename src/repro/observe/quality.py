"""Detection-quality scoring: watchdog verdicts vs chaos ground truth.

The chaos subsystem's :meth:`~repro.chaos.plan.FaultPlan.ground_truth`
turns a fault plan into anomaly labels — each link fault is a time window
that *should* be flagged, each rank with scheduled stragglers an
iteration set. :func:`evaluate_detection` matches a verdict log against
those labels and reports precision, recall, and per-label detection
latency, which is what the observe test-suite bounds (a CUSUM with
threshold *h* and drift *k* detects a shift of size *s > k* within
``h / (s - k)`` samples, so latency assertions are principled, not
tuned-by-eye).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.observe.verdicts import link_endpoints


@dataclass
class LabelMatch:
    """One ground-truth label and the verdicts credited to it."""

    label: Dict[str, Any]
    verdicts: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def detected(self) -> bool:
        """Whether at least one verdict matched this label."""
        return bool(self.verdicts)

    @property
    def detection_latency_seconds(self) -> Optional[float]:
        """Sim seconds from the label's window opening to the first
        matching verdict (``None`` for undetected or iteration-scoped
        labels)."""
        if not self.verdicts or "start_seconds" not in self.label:
            return None
        first = min(v["time"] for v in self.verdicts)
        return first - float(self.label["start_seconds"])


@dataclass
class DetectionReport:
    """Precision/recall of one verdict log against one fault plan."""

    matches: List[LabelMatch]
    false_positives: List[Dict[str, Any]]
    total_verdicts: int

    @property
    def detected_labels(self) -> int:
        """Ground-truth labels with at least one matching verdict."""
        return sum(1 for m in self.matches if m.detected)

    @property
    def recall(self) -> float:
        """Fraction of ground-truth labels detected (1.0 when no labels)."""
        if not self.matches:
            return 1.0
        return self.detected_labels / len(self.matches)

    @property
    def precision(self) -> float:
        """Fraction of verdicts explained by some label (1.0 when silent)."""
        if self.total_verdicts == 0:
            return 1.0
        return 1.0 - len(self.false_positives) / self.total_verdicts

    @property
    def worst_latency_seconds(self) -> Optional[float]:
        """The slowest detection among time-window labels, if any."""
        latencies = [
            m.detection_latency_seconds
            for m in self.matches
            if m.detection_latency_seconds is not None
        ]
        return max(latencies) if latencies else None


def _verdict_nodes(verdict: Dict[str, Any]) -> List[str]:
    """Every node name a verdict points at, via subject or implicated links."""
    nodes: List[str] = []
    subject = str(verdict.get("subject", ""))
    links = list(verdict.get("implicated_links", ()))
    if subject.startswith(("link:", "fit:")):
        links.append(subject.split(":", 1)[1])
    for link in links:
        try:
            nodes.extend(link_endpoints(link))
        except Exception:
            continue
    return nodes


def _matches_label(
    verdict: Dict[str, Any],
    label: Dict[str, Any],
    time_slack_seconds: float,
    iteration_slack: int,
) -> bool:
    if verdict.get("kind") not in label.get("kinds", ()):
        return False
    if "start_seconds" in label:
        start = float(label["start_seconds"])
        end = float(label.get("end_seconds", start)) + time_slack_seconds
        if not start <= float(verdict["time"]) <= end:
            return False
        node = label.get("node")
        if node is not None:
            # Interference verdicts name the iteration stream, not a link;
            # accept them on timing alone when they implicate nothing.
            nodes = _verdict_nodes(verdict)
            if nodes and str(node) not in nodes:
                return False
        return True
    if "iterations" in label:
        iterations = sorted(int(i) for i in label["iterations"])
        if not iterations:
            return False
        lo, hi = iterations[0], iterations[-1] + iteration_slack
        if not lo <= int(verdict.get("iteration", -1)) <= hi:
            return False
        subject = label.get("subject")
        return subject is None or verdict.get("subject") == subject
    return False


def evaluate_detection(
    verdicts: Sequence[Dict[str, Any]],
    labels: Sequence[Dict[str, Any]],
    time_slack_seconds: float = 5.0,
    iteration_slack: int = 8,
) -> DetectionReport:
    """Score verdict records against ground-truth labels.

    A verdict is credited to every label it matches (kind, timing, and —
    where the label names a node or subject — location); verdicts that
    match no label are false positives. ``time_slack_seconds`` and
    ``iteration_slack`` extend each label's window to cover detector
    latency: a sustained shift is necessarily flagged *after* its onset.
    """
    matches = [LabelMatch(label=dict(label)) for label in labels]
    false_positives: List[Dict[str, Any]] = []
    for verdict in verdicts:
        hit = False
        for match in matches:
            if _matches_label(
                verdict, match.label, time_slack_seconds, iteration_slack
            ):
                match.verdicts.append(dict(verdict))
                hit = True
        if not hit:
            false_positives.append(dict(verdict))
    return DetectionReport(
        matches=matches,
        false_positives=false_positives,
        total_verdicts=len(verdicts),
    )


def cusum_latency_bound(
    threshold: float, drift: float, shift: float, warmup: int = 0
) -> Optional[Tuple[int, float]]:
    """Worst-case samples for a CUSUM to flag a sustained ``shift``.

    Returns ``(samples, per_sample_gain)`` — the smallest ``n`` with
    ``n * gain`` *strictly* above the threshold (the detector fires on
    ``>``, not ``>=``), plus warm-up — or ``None`` when the shift is
    within the drift allowance and therefore undetectable by design.
    """
    gain = abs(shift) - drift
    if gain <= 0:
        return None
    samples = int(threshold // gain) + 1
    return warmup + samples, gain
