"""The communicator: executes strategies on the simulated cluster (Sec. V).

This package is the runtime half of AdapCC: transmission contexts with
registered buffers (:mod:`repro.runtime.context`,
:mod:`repro.runtime.buffers`), work/result queues
(:mod:`repro.runtime.queues`), and the pipelined chunk executor
(:mod:`repro.runtime.executor`) that moves *real numpy payloads* through
the fluid network so collective results are verifiable bit-for-bit.

The high-level entry points live in :mod:`repro.runtime.collectives`:
``run_reduce``, ``run_broadcast``, ``run_allreduce``, ``run_allgather``,
``run_reduce_scatter`` and ``run_alltoall``.
"""

from repro.runtime.collectives import (
    CollectiveResult,
    PendingCollective,
    launch_allreduce,
    run_allgather,
    run_allreduce,
    run_alltoall,
    run_broadcast,
    run_reduce,
    run_reduce_scatter,
)
from repro.runtime.buffers import BufferRegistry, GpuBuffers
from repro.runtime.context import ContextManager, TransmissionContext
from repro.runtime.queues import WorkItem, WorkQueues
from repro.runtime.service import CollectiveService

__all__ = [
    "BufferRegistry",
    "CollectiveResult",
    "CollectiveService",
    "PendingCollective",
    "launch_allreduce",
    "ContextManager",
    "GpuBuffers",
    "TransmissionContext",
    "WorkItem",
    "WorkQueues",
    "run_allgather",
    "run_allreduce",
    "run_alltoall",
    "run_broadcast",
    "run_reduce",
    "run_reduce_scatter",
]
