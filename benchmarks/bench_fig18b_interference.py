"""Fig. 18(b) — communication time under online-serving interference.

The paper co-locates CPU inference tasks with training: every 5 minutes,
0-2 GPUs per server get an online task on their affinity socket, at a CPU
interference level from 0 % to 400 %. Higher levels slow the victims'
compute, creating stragglers; AdapCC's relay control yields up to 1.49x
faster communication than NCCL at the highest level.
"""

import pytest

from repro.bench import Series, measure_training
from repro.hardware import make_homo_cluster
from repro.training import VIT
from repro.training.interference import InterferenceModel
from repro.training.trainer import TrainerConfig

LEVELS = [0.0, 100.0, 200.0, 400.0]
ITERATIONS = 8


def interference_factory(level):
    if level == 0.0:
        return None

    def factory(cluster):
        return InterferenceModel(
            cluster, level_percent=level, reroll_seconds=2.0, seed=43
        )

    return factory


def measure():
    results = {}
    for level in LEVELS:
        for backend in ("adapcc", "nccl"):
            report = measure_training(
                make_homo_cluster(num_servers=4),
                backend,
                VIT,
                TrainerConfig(iterations=ITERATIONS, seed=43),
                interference_factory=interference_factory(level),
            )
            results[(level, backend)] = report.mean_comm_seconds
    return results


def test_fig18b_interference_communication_time(run_once):
    results = run_once(measure)

    series = Series(
        "Fig. 18b — ViT communication time vs CPU interference level",
        "level (%)",
        "comm (ms)",
    )
    series.set_x(LEVELS)
    series.add("adapcc", [results[(l, "adapcc")] * 1e3 for l in LEVELS])
    series.add("nccl", [results[(l, "nccl")] * 1e3 for l in LEVELS])
    gains = [results[(l, "nccl")] / results[(l, "adapcc")] for l in LEVELS]
    series.add("speedup", gains)
    series.show()
    print(f"speedup at highest level: {gains[-1]:.2f}x (paper: up to 1.49x)")

    # Shape: AdapCC faster at every level; interference slows NCCL's comm
    # (more straggler waiting) more than AdapCC's.
    assert all(g > 1.0 for g in gains)
    assert results[(400.0, "nccl")] > results[(0.0, "nccl")]
