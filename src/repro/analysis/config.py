"""Switches controlling when static verification runs.

Verification is cheap relative to simulation but not free, so production
callers opt in (or set ``REPRO_VERIFY=1``) while test runs get it by
default: under pytest every synthesized and planned strategy is verified
unless explicitly disabled, which turns the whole suite into a property
test of the synthesizer.
"""

from __future__ import annotations

import os
from typing import Optional

#: Environment variable overriding the default verification policy.
ENV_VERIFY = "REPRO_VERIFY"

_FALSEY = {"", "0", "false", "no", "off"}


def verification_enabled(explicit: Optional[bool] = None) -> bool:
    """Resolve a ``verify=`` tri-state flag against environment defaults.

    Precedence: an explicit ``True``/``False`` wins; otherwise the
    ``REPRO_VERIFY`` environment variable decides; otherwise verification
    is on exactly when running under pytest (detected via
    ``PYTEST_CURRENT_TEST``, which pytest sets for the duration of each
    test).
    """
    if explicit is not None:
        return explicit
    env = os.environ.get(ENV_VERIFY)
    if env is not None:
        return env.strip().lower() not in _FALSEY
    return "PYTEST_CURRENT_TEST" in os.environ
