"""Unit and property tests for the fluid-flow network."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.simulation import FluidLink, FluidNetwork, Simulator


def make_net():
    sim = Simulator()
    return sim, FluidNetwork(sim)


def test_single_transfer_takes_size_over_capacity():
    sim, net = make_net()
    link = FluidLink("l", capacity=100.0)
    done = net.transfer([link], size=1000.0)
    sim.run_until_complete(done)
    assert sim.now == pytest.approx(10.0)


def test_latency_is_paid_before_streaming():
    sim, net = make_net()
    link = FluidLink("l", capacity=100.0, latency=2.0)
    done = net.transfer([link], size=1000.0)
    sim.run_until_complete(done)
    assert sim.now == pytest.approx(12.0)


def test_extra_latency_adds_to_path_latency():
    sim, net = make_net()
    link = FluidLink("l", capacity=100.0, latency=1.0)
    done = net.transfer([link], size=100.0, extra_latency=3.0)
    sim.run_until_complete(done)
    assert sim.now == pytest.approx(5.0)


def test_two_transfers_share_fairly():
    sim, net = make_net()
    link = FluidLink("l", capacity=100.0)
    d1 = net.transfer([link], size=1000.0)
    d2 = net.transfer([link], size=1000.0)
    sim.run_until_complete(d1)
    sim.run_until_complete(d2)
    # Both stream at 50 B/s, so both finish at t=20.
    assert sim.now == pytest.approx(20.0)


def test_short_transfer_releases_bandwidth():
    sim, net = make_net()
    link = FluidLink("l", capacity=100.0)
    d_long = net.transfer([link], size=1000.0)
    d_short = net.transfer([link], size=100.0)
    sim.run_until_complete(d_short)
    assert sim.now == pytest.approx(2.0)  # 100 B at 50 B/s
    sim.run_until_complete(d_long)
    # Long transfer: 100 B in first 2 s, remaining 900 B at full 100 B/s.
    assert sim.now == pytest.approx(11.0)


def test_per_stream_cap_limits_single_flow():
    sim, net = make_net()
    link = FluidLink("l", capacity=100.0, per_stream_cap=20.0)
    done = net.transfer([link], size=100.0)
    sim.run_until_complete(done)
    assert sim.now == pytest.approx(5.0)


def test_per_stream_cap_allows_parallel_streams_to_saturate():
    sim, net = make_net()
    link = FluidLink("l", capacity=100.0, per_stream_cap=20.0)
    events = [net.transfer([link], size=100.0) for _ in range(5)]
    for e in events:
        sim.run_until_complete(e)
    # Five capped streams achieve 5*20 = 100 B/s aggregate.
    assert sim.now == pytest.approx(5.0)


def test_path_bottleneck_sets_rate():
    sim, net = make_net()
    fast = FluidLink("fast", capacity=1000.0)
    slow = FluidLink("slow", capacity=10.0)
    done = net.transfer([fast, slow], size=100.0)
    sim.run_until_complete(done)
    assert sim.now == pytest.approx(10.0)


def test_path_latencies_accumulate():
    sim, net = make_net()
    a = FluidLink("a", capacity=100.0, latency=1.0)
    b = FluidLink("b", capacity=100.0, latency=2.0)
    done = net.transfer([a, b], size=100.0)
    sim.run_until_complete(done)
    assert sim.now == pytest.approx(4.0)


def test_repeated_link_consumes_capacity_twice():
    sim, net = make_net()
    bus = FluidLink("bus", capacity=100.0)
    done = net.transfer([bus, bus], size=100.0)
    sim.run_until_complete(done)
    # The flow crosses the bus twice, so its end-to-end rate is 50 B/s.
    assert sim.now == pytest.approx(2.0)


def test_max_min_with_unequal_demands():
    sim, net = make_net()
    shared = FluidLink("shared", capacity=90.0)
    private = FluidLink("private", capacity=30.0)
    # Flow A is capped at 30 by its private link; flow B then gets 60.
    d_a = net.transfer([shared, private], size=300.0)
    d_b = net.transfer([shared], size=600.0)
    sim.run_until_complete(d_a)
    assert sim.now == pytest.approx(10.0)
    sim.run_until_complete(d_b)
    assert sim.now == pytest.approx(10.0)


def test_zero_size_transfer_completes_after_latency():
    sim, net = make_net()
    link = FluidLink("l", capacity=100.0, latency=1.5)
    done = net.transfer([link], size=0.0)
    sim.run_until_complete(done)
    assert sim.now == pytest.approx(1.5)


def test_empty_path_transfer_is_pure_latency():
    sim, net = make_net()
    done = net.transfer([], size=12345.0, extra_latency=2.0)
    sim.run_until_complete(done)
    assert sim.now == pytest.approx(2.0)


def test_negative_size_rejected():
    sim, net = make_net()
    link = FluidLink("l", capacity=100.0)
    with pytest.raises(SimulationError):
        net.transfer([link], size=-1.0)


def test_cancel_fails_event():
    sim, net = make_net()
    link = FluidLink("l", capacity=10.0)
    done = net.transfer([link], size=1000.0)
    cancelled = []

    def canceller(sim):
        yield sim.timeout(1.0)
        net.cancel(net.active_transfers[0])

    def waiter(sim):
        try:
            yield done
        except SimulationError:
            cancelled.append(sim.now)

    sim.process(waiter(sim))
    sim.process(canceller(sim))
    sim.run()
    assert cancelled == [1.0]


def test_set_capacity_midway_changes_rate():
    sim, net = make_net()
    link = FluidLink("l", capacity=100.0)
    done = net.transfer([link], size=1000.0)

    def shaper(sim):
        yield sim.timeout(5.0)  # 500 B moved so far
        net.set_capacity(link, 50.0)

    sim.process(shaper(sim))
    sim.run_until_complete(done)
    # Remaining 500 B at 50 B/s takes 10 more seconds.
    assert sim.now == pytest.approx(15.0)


def test_capacity_drop_to_zero_stalls_then_resumes():
    sim, net = make_net()
    link = FluidLink("l", capacity=100.0)
    done = net.transfer([link], size=1000.0)

    def shaper(sim):
        yield sim.timeout(5.0)
        net.set_capacity(link, 0.0)
        yield sim.timeout(10.0)
        net.set_capacity(link, 100.0)

    sim.process(shaper(sim))
    sim.run_until_complete(done)
    assert sim.now == pytest.approx(20.0)


def test_bytes_carried_accounting():
    sim, net = make_net()
    link = FluidLink("l", capacity=100.0)
    done = net.transfer([link], size=1000.0)
    sim.run_until_complete(done)
    assert link.bytes_carried == pytest.approx(1000.0)


def test_link_load_reports_aggregate_rate():
    sim, net = make_net()
    link = FluidLink("l", capacity=100.0)
    net.transfer([link], size=1000.0)
    net.transfer([link], size=1000.0)
    sim.run(until=1.0)
    assert net.link_load(link) == pytest.approx(100.0)


def test_transfer_records_start_and_finish():
    sim, net = make_net()
    link = FluidLink("l", capacity=100.0, latency=1.0)
    done = net.transfer([link], size=100.0)
    t = sim.run_until_complete(done)
    assert t.start_time == pytest.approx(1.0)
    assert t.finish_time == pytest.approx(2.0)


# -- property-based invariants ------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(
    sizes=st.lists(st.floats(min_value=1.0, max_value=1e6), min_size=1, max_size=6),
    capacity=st.floats(min_value=1.0, max_value=1e5),
)
def test_shared_link_conserves_bytes_and_time(sizes, capacity):
    """Total completion time on one shared link is at least sum(sizes)/capacity,
    and all bytes are delivered exactly."""
    sim, net = make_net()
    link = FluidLink("l", capacity=capacity)
    events = [net.transfer([link], size=s) for s in sizes]
    for e in events:
        sim.run_until_complete(e)
    assert sim.now >= sum(sizes) / capacity - 1e-6
    assert link.bytes_carried == pytest.approx(sum(sizes), rel=1e-6)


@settings(max_examples=60, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=8),
    capacity=st.floats(min_value=10.0, max_value=1e4),
)
def test_equal_flows_finish_together(n, capacity):
    """n identical flows on one link are served max-min fairly: all finish at
    n*size/capacity simultaneously."""
    sim, net = make_net()
    link = FluidLink("l", capacity=capacity)
    size = 1000.0
    events = [net.transfer([link], size=size) for _ in range(n)]
    finish = [sim.run_until_complete(e).finish_time for e in events]
    expected = n * size / capacity
    for f in finish:
        assert f == pytest.approx(expected, rel=1e-6)


@settings(max_examples=40, deadline=None)
@given(
    caps=st.lists(st.floats(min_value=1.0, max_value=100.0), min_size=2, max_size=5),
)
def test_rates_respect_link_capacity(caps):
    """At any observation instant, aggregate rate on each link is within
    capacity."""
    sim, net = make_net()
    links = [FluidLink(f"l{i}", capacity=c) for i, c in enumerate(caps)]
    for i in range(len(links)):
        net.transfer(links[i : i + 2], size=1e5)
    sim.run(until=1.0)
    for link in links:
        assert net.link_load(link) <= link.capacity * (1 + 1e-9)
