"""Logical topology construction and probe-based detection."""

from repro.topology.graph import (
    QUARANTINE_BETA,
    Edge,
    EdgeKind,
    LogicalTopology,
    NodeId,
    NodeKind,
    parse_link,
    parse_node,
)
from repro.topology.detector import DetectionReport, Detector, InstanceReport

__all__ = [
    "DetectionReport",
    "Detector",
    "Edge",
    "EdgeKind",
    "InstanceReport",
    "LogicalTopology",
    "NodeId",
    "NodeKind",
    "QUARANTINE_BETA",
    "parse_link",
    "parse_node",
]
