"""Report exporters: SARIF 2.1.0, structured JSON, and the text report.

SARIF output is **deterministic by construction**: rules and results are
emitted in canonical registry order, the document carries no timestamps,
durations, or cache markers, and serialization uses sorted keys with
fixed separators — so ``python -m repro.analysis --format sarif`` is
byte-identical across runs, cache states, and ``--jobs`` values. Rule
identifiers are ``<pass>/<code>`` (codes like ``event-order`` are shared
between passes, and SARIF requires unique rule ids per driver).

The text renderer preserves the legacy report shape (``ok   source
lint`` / ``FAIL trace lint: N finding(s)``) that scripts and the CI log
scrape already.
"""

from __future__ import annotations

import json
from typing import Iterable, List, Sequence, Set

from repro.analysis.findings import Finding
from repro.analysis.registry import PassResult

#: Schema of the ``--format json`` report envelope.
REPORT_SCHEMA = 1

_SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
_TOOL_URI = "https://github.com/adapcc/repro"


def rule_id(pass_name: str, code: str) -> str:
    """The SARIF ``ruleId`` for one pass's finding code."""
    return f"{pass_name}/{code}"


def _sarif_result(result: PassResult, finding: Finding) -> dict:
    entry = {
        "ruleId": rule_id(result.spec.name, finding.code),
        "level": finding.severity,
        "message": {"text": finding.message},
        "partialFingerprints": {
            "repro/suppressionKey": finding.suppression_key,
        },
        "properties": {
            "pass": result.spec.name,
            "subject": finding.subject,
        },
    }
    if finding.file is not None:
        location = {
            "physicalLocation": {
                "artifactLocation": {"uri": finding.file},
            }
        }
        if finding.line is not None:
            location["physicalLocation"]["region"] = {"startLine": finding.line}
        entry["locations"] = [location]
    return entry


def to_sarif(results: Sequence[PassResult]) -> str:
    """Serialize pass results as a SARIF 2.1.0 document (deterministic)."""
    rules = []
    for result in results:
        for rule in result.spec.rules:
            rules.append(
                {
                    "id": rule_id(result.spec.name, rule.code),
                    "shortDescription": {"text": rule.description},
                    "defaultConfiguration": {"level": rule.severity},
                }
            )
    sarif_results = []
    notifications = []
    for result in results:
        for finding in result.findings:
            sarif_results.append(_sarif_result(result, finding))
        if result.error is not None:
            notifications.append(
                {
                    "level": "error",
                    "message": {
                        "text": f"pass {result.spec.name!r} crashed: "
                        + result.error.strip().splitlines()[-1]
                    },
                }
            )
    document = {
        "$schema": _SARIF_SCHEMA_URI,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-analysis",
                        "informationUri": _TOOL_URI,
                        "rules": rules,
                    }
                },
                "invocations": [
                    {
                        "executionSuccessful": all(
                            r.error is None for r in results
                        ),
                        "toolExecutionNotifications": notifications,
                    }
                ],
                "results": sarif_results,
                "columnKind": "unicodeCodePoints",
            }
        ],
    }
    return json.dumps(document, sort_keys=True, separators=(",", ":")) + "\n"


def to_json_report(results: Sequence[PassResult]) -> str:
    """Serialize pass results as the structured JSON report.

    Unlike SARIF this envelope carries run metadata (``cached``,
    internal-error text), so it is deterministic per cache state rather
    than across them.
    """
    payload = {
        "schema": REPORT_SCHEMA,
        "passes": [
            {
                "name": result.spec.name,
                "title": result.spec.title,
                "cached": result.cached,
                "ok": result.ok,
                "error": result.error,
                "findings": [f.to_dict() for f in result.findings],
            }
            for result in results
        ],
        "summary": {
            "passes": len(results),
            "findings": sum(len(r.findings) for r in results),
            "errors": sum(1 for r in results if r.error is not None),
        },
    }
    return json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n"


def render_text(
    results: Sequence[PassResult],
    suppressed: Iterable[str] = (),
    verbose_notes: bool = True,
) -> List[str]:
    """The human report, one line per entry (legacy ``ok   name`` shape).

    ``suppressed`` contains the suppression keys a baseline hides;
    matching findings are counted but rendered as suppressed.
    """
    suppressed_keys: Set[str] = set(suppressed)
    lines: List[str] = []
    for result in results:
        if verbose_notes:
            for note in result.notes:
                lines.append(f"     - {note}")
        if result.error is not None:
            lines.append(f"ERR  {result.spec.title}: internal error")
            lines.extend(
                f"     {line}" for line in result.error.strip().splitlines()
            )
            continue
        live = [
            f for f in result.findings if f.suppression_key not in suppressed_keys
        ]
        muted = len(result.findings) - len(live)
        cache_note = " (cached)" if result.cached else ""
        if not live:
            extra = f", {muted} suppressed" if muted else ""
            lines.append(f"ok   {result.spec.title}{cache_note}{extra}")
            continue
        extra = f" ({muted} suppressed)" if muted else ""
        lines.append(
            f"FAIL {result.spec.title}{cache_note}: "
            f"{len(live)} finding(s){extra}"
        )
        for finding in live:
            lines.append(f"     {finding} [{finding.severity}]")
    return lines
