"""The rank-0 coordinator: ready-set tracking and two-phase execution.

Per iteration (Fig. 6):

1. workers report tensor-ready times to the coordinator (an RPC whose
   latency Fig. 19d characterizes);
2. every 5 ms cycle the coordinator applies the break-even rule — wait,
   or trigger *phase 1* among the ready workers with the rest as relays;
3. if triggered, late tensors are aggregated and distributed in *phase 2*
   once the stragglers arrive, and every worker combines the two partial
   sums locally — bit-identical to a full AllReduce;
4. workers still absent T_fault after phase 1 are declared faulty and
   excluded (Sec. IV-C.2); survivors continue without a restart.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.analysis.config import verification_enabled
from repro.errors import CoordinationError
from repro.relay.behavior import behavior_tuples
from repro.relay.faults import FaultDetector, FaultReport
from repro.relay.ski_rental import (
    BreakEvenPolicy,
    estimate_collective_seconds,
)
from repro.runtime.collectives import run_allreduce
from repro.synthesis.strategy import Primitive, Strategy
from repro.telemetry.core import hub as telemetry_hub
from repro.topology.graph import LogicalTopology

#: Default RPC latency model: lognormal with ~0.6 ms median, matching the
#: paper's Fig. 19d where 90 % of negotiations finish under 1.5 ms.
def default_rpc_latency(rng: np.random.Generator) -> float:
    """One sampled worker-coordinator RPC latency in seconds."""
    return float(rng.lognormal(mean=np.log(6e-4), sigma=0.45))


@dataclass
class Decision:
    """Outcome of the wait-or-proceed scan."""

    proceed: bool
    trigger_time: float  # seconds after the iteration's collective request
    active_ranks: List[int]
    relays: List[int]
    waited_seconds: float
    buy_cost_seconds: float


@dataclass
class AdaptiveResult:
    """Result of one adaptively-executed collective."""

    outputs: Dict[int, np.ndarray]
    started: float
    finished: float
    decision: Decision
    fault_report: Optional[FaultReport] = None
    phase1_seconds: float = 0.0
    phase2_seconds: float = 0.0
    rpc_latency: float = 0.0

    @property
    def duration(self) -> float:
        """Wall time from the collective request to completion."""
        return self.finished - self.started


class Coordinator:
    """Implements the cycle-based wait/proceed scan (pure logic)."""

    def __init__(
        self,
        topology: LogicalTopology,
        policy: Optional[BreakEvenPolicy] = None,
        max_cycles: int = 100_000,
    ):
        self.topology = topology
        self.policy = policy or BreakEvenPolicy()
        self.max_cycles = max_cycles

    def decide(
        self,
        strategy: Strategy,
        tensor_size: float,
        ready_delays: Dict[int, Optional[float]],
    ) -> Decision:
        """Scan decision cycles until everyone is ready or break-even hits.

        ``ready_delays`` maps rank → seconds until its tensor is ready
        (``None`` = never, i.e. a crashed worker).
        """
        participants = list(strategy.participants)
        world = len(participants)
        known = [d for d in ready_delays.values() if d is not None]
        if not known:
            raise CoordinationError("no worker will ever be ready")
        fastest = min(known)  # waiting cost accrues from the first ready worker
        cycle = self.policy.cycle_seconds

        for k in range(1, self.max_cycles + 1):
            now = k * cycle
            ready = [
                rank
                for rank in participants
                if ready_delays.get(rank, 0.0) is not None
                and ready_delays.get(rank, 0.0) <= now
            ]
            if len(ready) == world:
                return Decision(
                    proceed=False,
                    trigger_time=now,
                    active_ranks=sorted(ready),
                    relays=[],
                    waited_seconds=now - fastest,
                    buy_cost_seconds=0.0,
                )
            if not ready:
                continue
            waited = now - fastest
            late = world - len(ready)
            buy = self._buy_cost(strategy, tensor_size, len(ready), late)
            if self.policy.should_proceed(waited, buy):
                relays = sorted(set(participants) - set(ready))
                return Decision(
                    proceed=True,
                    trigger_time=now,
                    active_ranks=sorted(ready),
                    relays=relays,
                    waited_seconds=waited,
                    buy_cost_seconds=buy,
                )
        raise CoordinationError("decision scan exceeded max_cycles")

    def _buy_cost(
        self, strategy: Strategy, tensor_size: float, num_ready: int, num_late: int
    ) -> float:
        """Estimated cost of proceeding: phase 1 + phase 2 time.

        Communicated volume scales with (participants − 1) for AllReduce
        (Sec. IV-C.1), so both phases are estimated by scaling a full
        collective's predicted time by their participation fractions. The
        synthesizer's own prediction anchors the estimate when available;
        the paper's raw S/B formula is the fallback.
        """
        world = num_ready + num_late
        if strategy.predicted_time > 0 and world > 1:
            per_worker = strategy.predicted_time / (world - 1)
            phase1 = per_worker * max(0, num_ready - 1)
            phase2 = per_worker * num_late
            return phase1 + phase2
        return estimate_collective_seconds(
            self.topology, strategy, strategy.primitive, tensor_size, num_ready
        ) + estimate_collective_seconds(
            self.topology, strategy, strategy.primitive, tensor_size, num_late + 1
        )


class AdaptiveAllReduce:
    """Two-phase adaptive AllReduce driven by the coordinator."""

    def __init__(
        self,
        topology: LogicalTopology,
        coordinator: Optional[Coordinator] = None,
        fault_detector: Optional[FaultDetector] = None,
        rpc_latency: Callable[[np.random.Generator], float] = default_rpc_latency,
        seed: int = 0,
        control_plane=None,
    ):
        self.topology = topology
        self.coordinator = coordinator or Coordinator(topology)
        #: Optional coordination layer (duck-typed against
        #: :class:`repro.recovery.control_plane.ControlPlane`) that takes
        #: over ``decide``; it may advance the simulator clock — e.g. a
        #: lease-expiry wait during coordinator failover — before the
        #: verdict comes back. ``None`` keeps the paper's shape: the plain
        #: rank-0 coordinator with no failure handling.
        self.control_plane = control_plane
        self.fault_detector = fault_detector or FaultDetector()
        self.rpc_latency = rpc_latency
        self.rng = np.random.default_rng(seed)
        #: Tri-state static-verification override (``None`` = defer to
        #: :func:`repro.analysis.verification_enabled`). Each distinct
        #: strategy object is verified once, on its first adaptive run —
        #: the coordinator reuses one strategy across many iterations.
        self.verify: Optional[bool] = None
        self._verified: Dict[int, Strategy] = {}
        #: Per-iteration relay picks, for Fig. 15.
        self.relay_counts: Dict[int, int] = {}
        self.iterations_run = 0
        #: RPC latency samples, for Fig. 19d.
        self.rpc_samples: List[float] = []

    def run(
        self,
        strategy: Strategy,
        inputs: Dict[int, np.ndarray],
        ready_delays: Dict[int, Optional[float]],
        byte_scale: float = 1.0,
        max_chunks: Optional[int] = None,
    ) -> AdaptiveResult:
        """Execute one collective adaptively; drives the simulator."""
        if strategy.primitive is not Primitive.ALLREDUCE:
            raise CoordinationError("adaptive execution currently targets AllReduce")
        if id(strategy) not in self._verified and verification_enabled(self.verify):
            from repro.analysis.verify_strategy import assert_valid

            assert_valid(strategy, self.topology)
            self._verified[id(strategy)] = strategy  # pin: keeps id() stable
        sim = self.topology.cluster.sim
        started = sim.now
        length = len(next(iter(inputs.values())))
        tensor_size = length * next(iter(inputs.values())).itemsize * byte_scale

        rpc = self.rpc_latency(self.rng)
        self.rpc_samples.append(rpc)
        decider = self.control_plane if self.control_plane is not None else self.coordinator
        decision = decider.decide(strategy, tensor_size, ready_delays)
        self.iterations_run += 1
        for rank in decision.relays:
            self.relay_counts[rank] = self.relay_counts.get(rank, 0) + 1
        telemetry = telemetry_hub()
        if telemetry.enabled:
            self._record_decision(telemetry, strategy, decision, ready_delays, started)

        if not decision.proceed:
            # Everyone became ready while waiting: one full collective.
            residual = {r: (ready_delays.get(r) or 0.0) for r in strategy.participants}
            result = run_allreduce(
                self.topology,
                strategy,
                inputs,
                ready_times=residual,
                byte_scale=byte_scale,
                max_chunks=max_chunks,
            )
            return AdaptiveResult(
                outputs=result.outputs,
                started=started,
                finished=sim.now,
                decision=decision,
                phase1_seconds=result.duration,
                rpc_latency=rpc,
            )

        # Phase 1: partial collective at the trigger instant, non-ready
        # workers acting as relays on the unchanged graph. Relays whose
        # tensors land mid-phase-1 join the ongoing aggregation chunk by
        # chunk (late join, Sec. IV-C); phase 2 then only carries what
        # missed the window.
        # A failing-over control plane may already have advanced the clock
        # past the nominal trigger instant while waiting out a lease.
        sim.run(until=max(sim.now, started + decision.trigger_time + rpc))
        phase1_start = sim.now
        phase1_span = None
        if telemetry.enabled:
            phase1_span = telemetry.begin(
                "relay-phase1",
                phase1_start,
                category="relay",
                track="relay",
                active=len(decision.active_ranks),
                relays=len(decision.relays),
            )
        phase1_ready = {
            rank: max(0.0, (started + delay) - sim.now)
            for rank, delay in ready_delays.items()
            if delay is not None
        }
        # Crashed workers (no ready time at all) can never late-join; only
        # relays with a known future ready time are candidates.
        late_candidates = [
            rank for rank in decision.relays if ready_delays.get(rank) is not None
        ]
        phase1 = run_allreduce(
            self.topology,
            strategy,
            inputs,
            active_ranks=decision.active_ranks,
            ready_times=phase1_ready,
            byte_scale=byte_scale,
            max_chunks=max_chunks,
            late_ranks=late_candidates,
        )
        phase1_end = sim.now
        if phase1_span is not None:
            phase1_span.args["late_joined"] = sorted(phase1.included_chunks)
            telemetry.end(phase1_span, phase1_end)
            telemetry.metrics.counter(
                "relay_phases_total", "phase-1/phase-2 relay executions"
            ).inc(phase="phase1")

        # Fault check: who will still be absent T_fault after phase 1?
        fastest_ready = started + min(
            d for d in ready_delays.values() if d is not None
        )
        absolute_ready = {
            rank: (None if delay is None else started + delay)
            for rank, delay in ready_delays.items()
        }
        report = self.fault_detector.detect(
            absolute_ready, decision.relays, fastest_ready, phase1_end
        ) if decision.relays else None

        late_survivors = [r for r in decision.relays if report is None or r in report.survivors]
        faulty = list(report.faulty_ranks) if report else []
        if telemetry.enabled and faulty:
            telemetry.instant(
                "fault-detected",
                sim.now,
                category="relay",
                track="relay",
                faulty=sorted(faulty),
                survivors=sorted(report.survivors),
                threshold_seconds=report.threshold_seconds,
                detected_at=report.detected_at,
            )
            telemetry.metrics.counter(
                "faults_detected_total", "workers declared faulty and excluded"
            ).inc(amount=float(len(faulty)))

        phase2_seconds = 0.0
        if late_survivors:
            residual = {
                rank: max(0.0, (absolute_ready[rank] or 0.0) - sim.now)
                for rank in late_survivors
            }
            # Chunks that late-joined phase 1 are already in its result:
            # mask them out of the phase-2 payloads, and shrink the
            # phase-2 traffic volume accordingly ("only partial data
            # chunks ... need to be broadcast", Sec. IV-C).
            phase2_inputs = dict(inputs)
            length = len(next(iter(inputs.values())))
            remaining_fraction = 0.0
            for rank in late_survivors:
                ranges = phase1.included_chunks.get(rank, [])
                if ranges:
                    masked = inputs[rank].copy()
                    covered = 0
                    for start, end in ranges:
                        masked[start:end] = 0.0
                        covered += end - start
                    phase2_inputs[rank] = masked
                    remaining_fraction = max(
                        remaining_fraction, 1.0 - covered / length
                    )
                else:
                    remaining_fraction = 1.0
            phase2_span = None
            if telemetry.enabled:
                phase2_span = telemetry.begin(
                    "relay-phase2",
                    sim.now,
                    category="relay",
                    track="relay",
                    late_survivors=sorted(late_survivors),
                    remaining_fraction=remaining_fraction,
                )
            phase2 = run_allreduce(
                self.topology,
                strategy,
                phase2_inputs,
                active_ranks=late_survivors,
                ready_times=residual,
                byte_scale=byte_scale * max(remaining_fraction, 1.0 / 64.0),
                max_chunks=max_chunks,
            )
            phase2_seconds = phase2.duration
            if phase2_span is not None:
                telemetry.end(phase2_span, sim.now)
                telemetry.metrics.counter(
                    "relay_phases_total", "phase-1/phase-2 relay executions"
                ).inc(phase="phase2")
            outputs = {
                rank: phase1.outputs[rank] + phase2.outputs[rank]
                for rank in strategy.participants
                if rank not in faulty
            }
        elif faulty:
            # Wait out the detection deadline before declaring and moving on.
            if report.detected_at > sim.now:
                sim.run(until=report.detected_at)
            outputs = {
                rank: phase1.outputs[rank]
                for rank in strategy.participants
                if rank not in faulty
            }
        else:
            outputs = dict(phase1.outputs)

        return AdaptiveResult(
            outputs=outputs,
            started=started,
            finished=sim.now,
            decision=decision,
            fault_report=report,
            phase1_seconds=phase1_end - phase1_start,
            phase2_seconds=phase2_seconds,
            rpc_latency=rpc,
        )

    def _record_decision(
        self,
        telemetry,
        strategy: Strategy,
        decision: Decision,
        ready_delays: Dict[int, Optional[float]],
        started: float,
    ) -> None:
        """Emit one ski-rental-decision instant with the full verdict context."""
        behavior = {}
        if decision.relays:
            # The behaviour tuples every GPU adopts on sub-collective 0's
            # graph under this ready-set (Fig. 7) — enough to reconstruct
            # who relays, who aggregates, who idles.
            behavior = {
                str(rank): list(bt.as_tuple())
                for rank, bt in behavior_tuples(
                    strategy.subcollectives[0],
                    strategy.primitive,
                    decision.active_ranks,
                ).items()
            }
        telemetry.instant(
            "ski-rental-decision",
            started + decision.trigger_time,
            category="relay",
            track="relay",
            verdict="relay" if decision.proceed else "wait",
            trigger_time=decision.trigger_time,
            waited_seconds=decision.waited_seconds,
            buy_cost_seconds=decision.buy_cost_seconds,
            break_even_cycle_seconds=self.coordinator.policy.cycle_seconds,
            active_ranks=decision.active_ranks,
            relays=decision.relays,
            ready_delays={str(r): d for r, d in sorted(ready_delays.items())},
            behavior=behavior,
        )
        telemetry.metrics.counter(
            "ski_rental_decisions_total", "coordinator wait-vs-relay verdicts"
        ).inc(verdict="relay" if decision.proceed else "wait")

    def relay_probabilities(self) -> Dict[int, float]:
        """Per-rank probability of having been chosen as a relay (Fig. 15)."""
        if self.iterations_run == 0:
            return {}
        return {
            rank: count / self.iterations_run for rank, count in sorted(self.relay_counts.items())
        }
