# ruff: noqa
"""Seeded hazard: unordered set iteration reaching scheduling sinks.

Iterating a set decides event-queue order, so the interleaving follows
PYTHONHASHSEED. The race detector must flag both the statement loop and
the comprehension form; the `sorted(...)` loop at the bottom is the fix
and must stay clean.
"""


def wake_all(sim, waiters):
    pending = set(waiters)
    for waiter in pending:  # HAZARD: hash order decides wake order
        sim.schedule(0.0, waiter)


def submit_batch(pool, jobs):
    # HAZARD: comprehension over a set feeds the submit sink directly.
    pool.submit(job for job in set(jobs))


def wake_all_fixed(sim, waiters):
    for waiter in sorted(set(waiters)):  # ordered: must NOT be flagged
        sim.schedule(0.0, waiter)
