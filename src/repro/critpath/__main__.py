"""``python -m repro.critpath`` — critical-path reports from exported runs.

Reads an exported JSONL telemetry run, extracts the chunk-pipeline spans,
and prints a bottleneck-attribution report — text by default, canonical
JSON with ``--json`` (byte-identical across same-seed runs, like every
exporter here). ``--output FILE`` writes instead of printing.

An exported file carries no strategy object, so the CLI always uses the
inferred DAG mode; dag-mode joins run in-process (the ``--critpath``
analysis pass, the bench grid) where the strategy is at hand.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.errors import TelemetryError
from repro.telemetry.export import read_jsonl


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.critpath",
        description="Critical-path extraction and bottleneck attribution "
        "over an exported telemetry run.",
    )
    parser.add_argument("run", help="path to an exported JSONL run file")
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the canonical JSON report instead of the text summary",
    )
    parser.add_argument(
        "--output",
        metavar="FILE",
        default=None,
        help="write the report to FILE instead of stdout",
    )
    parser.add_argument(
        "--top",
        type=int,
        default=5,
        metavar="N",
        help="links shown in the text summary (default: 5)",
    )
    args = parser.parse_args(argv)

    from repro.critpath.engine import analyze_run, render_report, report_to_json

    try:
        run = read_jsonl(args.run)
    except (TelemetryError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    report = analyze_run(run)
    text = (
        report_to_json(report)
        if args.json
        else render_report(report, top=max(1, args.top))
    )
    if args.output:
        Path(args.output).write_text(text, encoding="utf-8")
        print(f"wrote {args.output}", file=sys.stderr)
    else:
        sys.stdout.write(text)
    return 0


if __name__ == "__main__":
    sys.exit(main())
