"""Fig. 19(d) — CDF of the relay-control RPC latency.

The paper measures the worker-coordinator negotiation latency over 1000
VGG16 iterations on 6 servers: 90 % of data points are under 1.5 ms —
negligible against multi-server communication times.
"""

import numpy as np
import pytest

from repro.bench.harness import BenchEnvironment
from repro.hardware import make_hetero_cluster
from repro.training import VGG16
from repro.training.trainer import Trainer, TrainerConfig

ITERATIONS = 10


def measure():
    env = BenchEnvironment(make_hetero_cluster(num_a100=4, num_v100=2), "adapcc")
    trainer = Trainer(env.backend, VGG16, TrainerConfig(iterations=ITERATIONS, seed=47))
    report = trainer.run()
    samples = np.array(trainer.adaptive.rpc_samples)
    mean_comm = report.mean_comm_seconds
    return samples, mean_comm


def test_fig19d_rpc_latency_cdf(run_once):
    samples, mean_comm = run_once(measure)

    grid_ms = [0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 3.0]
    cdf = [float((samples <= g / 1e3).mean()) for g in grid_ms]
    print("\nFig. 19d — CDF of relay-control RPC latency (6 servers)")
    print("latency (ms): " + "  ".join(f"{g:5.2f}" for g in grid_ms))
    print("CDF:          " + "  ".join(f"{v:5.2f}" for v in cdf))
    print(f"p90 = {np.quantile(samples, 0.9) * 1e3:.2f} ms (paper: < 1.5 ms)")
    print(
        f"mean communication time {mean_comm * 1e3:.1f} ms -> RPC overhead "
        f"{np.mean(samples) / mean_comm * 100:.2f} % (negligible)"
    )

    assert np.quantile(samples, 0.9) < 1.5e-3
    assert np.mean(samples) < 0.05 * mean_comm
