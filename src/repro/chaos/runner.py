"""End-to-end chaos execution: a fault plan driven through the full stack.

:class:`ChaosRunner` owns one simulated cluster and replays one
:class:`~repro.chaos.plan.FaultPlan` against it, iteration by iteration:

1. the :class:`~repro.chaos.injector.ChaosInjector` resolves the plan into
   per-rank ready delays (and has already armed link faults on the fluid
   network);
2. the relay coordinator's ski-rental rule decides wait-vs-proceed on
   those *injected* ready times, and the two-phase adaptive AllReduce
   executes on the unchanged graph;
3. workers the :class:`~repro.relay.faults.FaultDetector` declares faulty
   are evicted from the group, the data loader redistributes shards so the
   global batch stays constant, and the next iteration's strategy is
   **re-synthesized on the shrunk topology**;
4. a transient crasher rejoins at its planned iteration: membership grows
   back, the strategy is re-synthesized again, and — the regression this
   module guards — the rejoiner gets grace for the iteration in which it
   has not yet reported (it is *unreported*, not faulty).

The runner drives the coordinator through a
:class:`~repro.recovery.control_plane.RecoveringControlPlane`: membership
changes install strategies via two-phase prepare/commit, every decision is
journaled, and the plan's :class:`~repro.chaos.plan.CoordinatorCrashFault`
and :class:`~repro.chaos.plan.PartitionFault` events exercise lease
takeover, journal replay, rollback, and epoch fencing — all of it without
touching the data path, so the exactness checks below still hold.

Every iteration's outputs are checked against the bitwise-exact reference
(the elementwise sum over the ranks that actually contributed), so the
conformance suite's central claim — chunked, pipelined, two-phase,
fault-ridden execution never changes the arithmetic — is asserted on
every run, not just in dedicated tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.chaos.corruption import PayloadCorruptor
from repro.chaos.injector import ChaosInjector
from repro.chaos.plan import DECIDE_PHASE, TRANSITION_PHASE, FaultPlan
from repro.critpath.consumer import CritpathConsumer
from repro.errors import ChaosError
from repro.hardware.cluster import Cluster
from repro.hardware.instance import InstanceSpec
from repro.integrity.channel import data_plane
from repro.integrity.checksums import payload_digest
from repro.integrity.monitor import (
    IntegrityConfig,
    IntegrityMonitor,
    strategy_link_names,
)
from repro.observe.watchdog import ObserveConfig, Watchdog
from repro.profiling.profiler import Profiler
from repro.recovery.control_plane import RecoveringControlPlane
from repro.relay.coordinator import AdaptiveAllReduce, AdaptiveResult
from repro.simulation.engine import Simulator
from repro.simulation.records import TraceRecorder
from repro.synthesis.optimizer import Synthesizer
from repro.synthesis.strategy import Primitive, Strategy
from repro.topology.graph import LogicalTopology
from repro.training.data import ShardedDataLoader


@dataclass
class IterationOutcome:
    """What one chaos-driven iteration did and produced."""

    iteration: int
    participants: List[int]
    contributors: List[int]
    proceeded: bool
    relays: List[int]
    evicted: List[int]
    rejoined: List[int]
    outputs: Dict[int, np.ndarray]
    expected: np.ndarray
    duration: float
    #: Fencing epoch and lease holder under which the iteration ran.
    epoch: int = 1
    coordinator: int = 0
    #: Integrity-layer activity (0 when no monitor is attached).
    corruption_detections: int = 0
    integrity_retries: int = 0

    @property
    def exact(self) -> bool:
        """Whether every contributor's output equals the reference sum."""
        return all(
            np.array_equal(self.outputs[rank], self.expected)
            for rank in self.contributors
        )


@dataclass
class ChaosRunReport:
    """Everything a conformance test needs to compare two replays."""

    plan_signature: Tuple
    iterations: List[IterationOutcome] = field(default_factory=list)
    event_trace: List[Tuple] = field(default_factory=list)
    final_members: List[int] = field(default_factory=list)
    resyntheses: int = 0
    #: Recovery-control-plane tallies (all deterministic per seed).
    elections: int = 0
    fenced_messages: int = 0
    rollbacks: int = 0
    replayed_records: int = 0
    #: The coordinator journal's stable content, for replay comparison.
    log_signature: Tuple = ()
    #: Integrity-layer outcome (empty without a monitor).
    convictions: List[str] = field(default_factory=list)
    quarantined_links: List[str] = field(default_factory=list)
    probe_rounds: int = 0
    #: Corruptions the chaos side actually applied, replay-comparable.
    corruption_trace: Tuple = ()
    #: The integrity log's JSONL export (byte-identical across replays).
    integrity_log: str = ""

    @property
    def all_exact(self) -> bool:
        """Whether every iteration's aggregation was bitwise exact."""
        return all(outcome.exact for outcome in self.iterations)

    def final_outputs(self) -> Dict[int, np.ndarray]:
        """Last iteration's per-rank outputs (the replay-equality anchor)."""
        return self.iterations[-1].outputs if self.iterations else {}


class ChaosRunner:
    """Replays one fault plan over a fresh simulated cluster."""

    def __init__(
        self,
        specs: Sequence[InstanceSpec],
        plan: FaultPlan,
        length: int = 2048,
        byte_scale: float = 1.0,
        max_chunks: Optional[int] = 8,
        recorder: Optional[TraceRecorder] = None,
        dataset_size: int = 4096,
        observe: Optional[ObserveConfig] = None,
        integrity: Optional[IntegrityConfig] = None,
    ):
        self.sim = Simulator()
        self.cluster = Cluster(self.sim, specs)
        if recorder is not None:
            self.cluster.network.attach_recorder(recorder)
        self.topology = LogicalTopology.from_cluster(self.cluster)
        self.synthesizer = Synthesizer(self.topology)
        self.plan = plan
        self.length = length
        self.byte_scale = byte_scale
        self.max_chunks = max_chunks
        self.injector = ChaosInjector(self.cluster, plan, recorder=recorder)
        ranks = [gpu.rank for gpu in self.cluster.gpus]
        self.control_plane = RecoveringControlPlane(
            self.topology, members=ranks, seed=plan.seed
        )
        self.adaptive = AdaptiveAllReduce(
            self.topology, seed=plan.seed, control_plane=self.control_plane
        )
        if any(c.rank not in ranks for c in plan.crashes):
            raise ChaosError("plan crashes ranks outside the cluster")
        if any(r not in ranks for p in plan.partitions for r in p.ranks):
            raise ChaosError("plan partitions ranks outside the cluster")
        edge_names = {f"{src}->{dst}" for (src, dst) in self.topology.edges}
        unknown = sorted(
            c.link for c in plan.corruptions if c.link not in edge_names
        )
        if unknown:
            raise ChaosError(f"plan corrupts links outside the topology: {unknown}")
        # Data-plane parties: the corruptor exists whenever the plan
        # schedules corruption (the attack is real even when undefended);
        # the monitor only when the integrity layer is switched on.
        self.corruptor: Optional[PayloadCorruptor] = None
        if plan.corruptions:
            self.corruptor = PayloadCorruptor(
                plan.corruptions, seed=plan.seed, on_corrupt=self._on_corrupt
            )
        self.monitor: Optional[IntegrityMonitor] = None
        if integrity is not None and integrity.enabled:
            self.monitor = IntegrityMonitor(
                integrity, seed=plan.seed, clock=lambda: self.sim.now
            )
        self.members: List[int] = sorted(ranks)
        self.loader = ShardedDataLoader(
            dataset_size=dataset_size, global_batch=len(ranks) * 8, workers=list(ranks)
        )
        self._strategy: Optional[Strategy] = None
        self._strategy_members: Optional[Tuple[int, ...]] = None
        self.resyntheses = 0
        # Closed-loop observability: a watchdog on the live telemetry
        # stream drives targeted re-probes and hysteresis-gated
        # re-synthesis through the same transactional install path the
        # membership changes use. Requires an enabled telemetry hub.
        self.watchdog: Optional[Watchdog] = None
        self.profiler: Optional[Profiler] = None
        self.critpath: Optional[CritpathConsumer] = None
        if observe is not None and observe.enabled:
            self.profiler = Profiler(self.topology)
            # Streaming critical-path attribution rides the same hub the
            # watchdog consumes: per iteration it names the top bottleneck
            # link, so verdicts cite a culprit and the re-probe narrows to
            # the attributed link instead of every implicated one.
            self.critpath = CritpathConsumer()
            self.watchdog = Watchdog(
                self.topology,
                config=observe,
                profiler=self.profiler,
                current_strategy=lambda: self._strategy,
                resynthesize=self._resynthesize_for_observe,
                synthesizer=self.synthesizer,
                attribution=self.critpath.top_link,
            ).attach()
            if self.watchdog._hub is not None:
                self.watchdog._hub.subscribe(self.critpath)

    # -- strategy management ---------------------------------------------------

    def _strategy_for(
        self, members: Sequence[int], crash_after_prepare: bool = False
    ) -> Strategy:
        """Current strategy, installed transactionally when membership
        changed (or when a between-prepare-and-commit coordinator crash is
        being injected, which forces a re-install of the same strategy so
        the rollback path has a transition to orphan)."""
        key = tuple(members)
        changed = self._strategy is None or self._strategy_members != key
        if not changed and not crash_after_prepare:
            return self._strategy
        committed = self.control_plane.install_strategy(
            members, crash_after_prepare=crash_after_prepare
        )
        if changed:
            first = self._strategy is None
            tensor_size = self.length * 8 * self.byte_scale
            self._strategy = self.synthesizer.synthesize(
                Primitive.ALLREDUCE, tensor_size, list(committed)
            )
            self._strategy_members = key
            if not first:
                self.resyntheses += 1
            self.injector.record(
                "chaos-resynthesis", "synthesizer", key,
                members=list(key),
            )
        return self._strategy

    def _resynthesize_for_observe(self, reason: str) -> Strategy:
        """The watchdog's re-synthesis hook: transactional install of a
        fresh strategy on the *current* membership under the refreshed
        link estimates (two-phase prepare/commit, journaled like every
        membership-driven install)."""
        committed = self.control_plane.install_strategy(self.members)
        tensor_size = self.length * 8 * self.byte_scale
        self._strategy = self.synthesizer.synthesize(
            Primitive.ALLREDUCE, tensor_size, list(committed)
        )
        self._strategy_members = tuple(self.members)
        self.resyntheses += 1
        self.injector.record(
            "chaos-resynthesis", "synthesizer", tuple(self.members),
            members=list(self.members), reason=reason,
        )
        return self._strategy

    # -- integrity --------------------------------------------------------------

    def _on_corrupt(self, **payload) -> None:
        """The corruptor's strike callback: land it in the chaos trace."""
        self.injector.record(
            "chaos-corruption",
            payload["link"],
            payload["site"],
            payload["mode"],
            payload["iteration"],
            **payload,
        )

    def _resynthesize_for_integrity(self, link: str) -> Strategy:
        """Quarantine-driven re-synthesis: same transactional two-phase
        install path as membership changes and watchdog verdicts, on the
        current membership over the capacity-masked topology."""
        committed = self.control_plane.install_strategy(self.members)
        tensor_size = self.length * 8 * self.byte_scale
        self._strategy = self.synthesizer.synthesize(
            Primitive.ALLREDUCE, tensor_size, list(committed)
        )
        self._strategy_members = tuple(self.members)
        self.resyntheses += 1
        self.injector.record(
            "chaos-resynthesis", "synthesizer", tuple(self.members),
            members=list(self.members), reason=f"integrity-quarantine:{link}",
        )
        return self._strategy

    def _integrity_scan(
        self,
        iteration: int,
        hop_before: int,
        inputs: Dict[int, np.ndarray],
        contributors: List[int],
        result: AdaptiveResult,
        strategy: Strategy,
    ) -> Tuple[bool, Optional[Strategy]]:
        """One attempt's detect→localize→convict→heal pass.

        Returns ``(detected, new_strategy)``: whether this attempt's
        output is corrupted (so the caller should retry), and the freshly
        committed strategy when a conviction quarantined a link.
        """
        monitor = self.monitor
        assert monitor is not None
        # Per-hop evidence first: a checksum failure names its link.
        new_hops = monitor.hop_failures[hop_before:]
        hop_links = sorted({failure["link"] for failure in new_hops})
        # The digest exchange closes over everything the hop checks miss.
        input_digests = {rank: payload_digest(inputs[rank]) for rank in contributors}
        outputs = {rank: result.outputs[rank] for rank in contributors}
        mismatches = monitor.check_collective(
            input_digests, outputs, site="runner", now=self.sim.now
        )
        if not new_hops and not mismatches:
            return False, None
        suspects: List[Tuple[str, str]] = [(link, "checksum") for link in hop_links]
        if not hop_links:
            # Digest-only detection: every link the strategy crossed is
            # implicated; binary-search probes narrow it down.
            localization = monitor.run_localization(strategy_link_names(strategy))
            if localization.conclusive:
                suspects.append((localization.link, "probe"))
        new_strategy: Optional[Strategy] = None
        for link, evidence in suspects:
            convicted = monitor.suspect(link, evidence, now=self.sim.now)
            if not convicted or not monitor.config.quarantine:
                continue
            self.topology.quarantine_link(link)
            monitor.record_quarantine(link, now=self.sim.now)
            self.injector.record(
                "chaos-quarantine", link, iteration,
                iteration=iteration, link=link,
            )
            new_strategy = self._resynthesize_for_integrity(link)
            monitor.record_resynthesis(link, now=self.sim.now)
        return True, new_strategy

    # -- inputs ----------------------------------------------------------------

    def _inputs_for(self, rng: np.random.Generator, ranks: Sequence[int]):
        """Integer-valued float64 tensors: float addition over them is exact
        in any order, which is what makes 'bitwise equal' well-defined for
        differently-shaped aggregation trees."""
        return {
            rank: rng.integers(0, 64, self.length).astype(np.float64)
            for rank in ranks
        }

    # -- execution -------------------------------------------------------------

    def run(self) -> ChaosRunReport:
        """Replay the whole plan; returns the comparable report."""
        self.injector.start()
        rng = np.random.default_rng(self.plan.seed)
        report = ChaosRunReport(plan_signature=self.plan.signature())
        all_ranks = sorted(gpu.rank for gpu in self.cluster.gpus)

        # Attach the data-plane parties for the duration of the run; the
        # previous state is restored even when the plan aborts, so one
        # run's corruptor can never leak into the next runner's pipelines.
        plane = data_plane()
        previous = (plane.corruptor, plane.monitor)
        if self.corruptor is not None:
            plane.corruptor = self.corruptor
        if self.monitor is not None:
            plane.monitor = self.monitor
        try:
            return self._run_iterations(report, rng, all_ranks)
        finally:
            plane.corruptor, plane.monitor = previous

    def _run_iterations(
        self, report: ChaosRunReport, rng: np.random.Generator, all_ranks: List[int]
    ) -> ChaosRunReport:
        for iteration in range(self.plan.iterations):
            # Control-channel partitions: heal the windows ending here
            # before opening the ones starting here.
            for fault in self.plan.partitions_healing_at(iteration):
                healed = self.control_plane.heal(fault.ranks)
                if healed:
                    self.injector.record(
                        "chaos-heal", "control-plane", iteration, tuple(healed),
                        iteration=iteration, ranks=list(healed),
                    )
            for fault in self.plan.partitions_starting_at(iteration):
                isolated = self.control_plane.partition(fault.ranks)
                if isolated:
                    self.injector.record(
                        "chaos-partition", "control-plane", iteration,
                        tuple(isolated),
                        iteration=iteration, ranks=list(isolated),
                    )

            # Rejoin transient crashers whose window ends here (if they
            # were evicted; a crasher that was never detected — e.g. its
            # window fell between collectives — is still a member). A
            # readmitted rank gets a fresh one-shot grace window: its
            # first iteration back may straggle without being re-evicted.
            rejoined = [
                rank
                for rank in self.plan.rejoining_at(iteration)
                if rank not in self.members
            ]
            if rejoined:
                self.members = sorted(set(self.members) | set(rejoined))
                self.loader.readmit(rejoined)
                self.adaptive.fault_detector.arm_grace(rejoined)
                for rank in rejoined:
                    self.injector.record(
                        "chaos-rejoin", f"rank{rank}", iteration, rank,
                        iteration=iteration, rank=rank,
                    )

            participants = list(self.members)
            self.control_plane.begin_iteration(iteration, participants)
            crash = self.plan.coordinator_crash_at(iteration)
            if crash is not None:
                self.injector.record(
                    "chaos-coordinator-crash", "control-plane", iteration,
                    crash.phase,
                    iteration=iteration, phase=crash.phase,
                )
            # Inputs are drawn for the full cluster every iteration so the
            # stream consumed per rank is membership-independent — replays
            # with different eviction timing still agree on tensors.
            inputs_all = self._inputs_for(rng, all_ranks)
            inputs = {rank: inputs_all[rank] for rank in participants}
            ready = self.injector.ready_delays(iteration, participants)
            strategy = self._strategy_for(
                participants,
                crash_after_prepare=(
                    crash is not None and crash.phase == TRANSITION_PHASE
                ),
            )
            if crash is not None and crash.phase == DECIDE_PHASE:
                # The role dies now; the takeover happens inside decide.
                self.control_plane.crash_coordinator()

            if all(delay is None for delay in ready.values()):
                raise ChaosError(f"iteration {iteration}: no worker alive")

            # Integrity retry loop: a detected-corrupted attempt is re-run
            # (same inputs — they were drawn above, before any retry, so
            # the rng stream is attempt-independent) until it comes back
            # clean or the retry budget is spent. Detection may convict
            # and quarantine a link mid-loop, in which case the retry runs
            # on the freshly committed strategy.
            corruption_detections = 0
            integrity_retries = 0
            attempt = 0
            while True:
                if self.corruptor is not None:
                    self.corruptor.begin_iteration(iteration)
                if self.monitor is not None:
                    self.monitor.begin_iteration(iteration)
                hop_before = (
                    len(self.monitor.hop_failures) if self.monitor is not None else 0
                )
                result: AdaptiveResult = self.adaptive.run(
                    strategy,
                    inputs,
                    ready,
                    byte_scale=self.byte_scale,
                    max_chunks=self.max_chunks,
                )
                faulty = (
                    list(result.fault_report.faulty_ranks)
                    if result.fault_report is not None
                    else []
                )
                contributors = [rank for rank in participants if rank not in faulty]
                if self.monitor is None:
                    break
                detected, new_strategy = self._integrity_scan(
                    iteration, hop_before, inputs, contributors, result, strategy
                )
                if new_strategy is not None:
                    strategy = new_strategy
                if not detected:
                    break
                corruption_detections += 1
                if attempt >= self.monitor.config.max_retries:
                    break
                attempt += 1
                integrity_retries += 1
                self.monitor.record_retry(attempt, now=self.sim.now)
                if self.critpath is not None:
                    # Attribution windows are per-attempt, like the
                    # per-iteration reset below.
                    self.critpath.reset()

            expected = np.zeros(self.length, dtype=np.float64)
            for rank in contributors:
                expected += inputs[rank]

            report.iterations.append(
                IterationOutcome(
                    iteration=iteration,
                    participants=participants,
                    contributors=contributors,
                    proceeded=result.decision.proceed,
                    relays=list(result.decision.relays),
                    evicted=faulty,
                    rejoined=rejoined,
                    outputs=result.outputs,
                    expected=expected,
                    duration=result.duration,
                    epoch=self.control_plane.epoch,
                    coordinator=self.control_plane.coordinator,
                    corruption_detections=corruption_detections,
                    integrity_retries=integrity_retries,
                )
            )

            if self.watchdog is not None:
                self.watchdog.end_iteration(iteration, result.duration)
            if self.critpath is not None:
                # Attribution windows are per-iteration: drop the spans
                # the watchdog just scored.
                self.critpath.reset()

            if faulty:
                # Eviction: shrink the group, rebalance shards (global
                # batch unchanged), and force re-synthesis next iteration.
                self.members = [r for r in self.members if r not in faulty]
                if not self.members:
                    raise ChaosError("chaos plan evicted the whole group")
                self.loader.redistribute(self.members)
                for rank in sorted(faulty):
                    self.injector.record(
                        "chaos-evict", f"rank{rank}", iteration, rank,
                        iteration=iteration, rank=rank,
                    )

        # Drain the (finite) link-fault processes: the adaptive executor
        # advances time only as far as each collective needs, so a fault
        # window reaching past the last iteration still owes its nominal-
        # bandwidth restoration.
        self.sim.run()

        if self.watchdog is not None:
            if self.critpath is not None and self.watchdog._hub is not None:
                self.watchdog._hub.unsubscribe(self.critpath)
            self.watchdog.detach()

        report.event_trace = list(self.injector.trace)
        report.final_members = list(self.members)
        report.resyntheses = self.resyntheses
        report.elections = self.control_plane.elections
        report.fenced_messages = self.control_plane.fence.fenced
        report.rollbacks = self.control_plane.transition.rollbacks
        report.replayed_records = self.control_plane.replayed_records_total
        report.log_signature = self.control_plane.log.signature()
        if self.monitor is not None:
            self.monitor.finish(now=self.sim.now)
            report.convictions = list(self.monitor.convicted)
            report.quarantined_links = self.topology.quarantined_links()
            report.probe_rounds = self.monitor.probe_rounds_total
            report.integrity_log = self.monitor.log.to_jsonl()
        if self.corruptor is not None:
            report.corruption_trace = self.corruptor.trace_signature()
        return report
