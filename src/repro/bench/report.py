"""Table/series formatting for benchmark output.

Each benchmark prints the same rows/series its paper figure reports; these
helpers keep the formatting uniform and parseable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Sequence


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean (the paper's aggregate for per-config speedups)."""
    values = [v for v in values if v > 0]
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


@dataclass
class Table:
    """A printable table: one row per configuration, one column per system."""

    title: str
    columns: List[str]
    rows: List[List[str]] = field(default_factory=list)

    def add_row(self, label: str, values: Sequence) -> None:
        """Append one row; floats are formatted to three decimals."""
        formatted = [label] + [
            f"{v:.3f}" if isinstance(v, float) else str(v) for v in values
        ]
        self.rows.append(formatted)

    def render(self) -> str:
        """The table as an aligned text block."""
        header = ["config"] + self.columns
        widths = [
            max(len(str(row[i])) for row in [header] + self.rows)
            for i in range(len(header))
        ]
        lines = [self.title, "-" * len(self.title)]
        lines.append("  ".join(str(h).ljust(w) for h, w in zip(header, widths)))
        for row in self.rows:
            lines.append("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def show(self) -> None:
        """Print the table followed by a blank line."""
        print(self.render())
        print()


@dataclass
class Series:
    """A printable (x, y) series, one per system, for line-plot figures."""

    title: str
    x_label: str
    y_label: str
    data: Dict[str, List] = field(default_factory=dict)
    x_values: List = field(default_factory=list)

    def set_x(self, values: Sequence) -> None:
        """Set the shared x axis."""
        self.x_values = list(values)

    def add(self, name: str, values: Sequence[float]) -> None:
        """Add one named series."""
        self.data[name] = list(values)

    def render(self) -> str:
        """The series block as text."""
        lines = [self.title, "-" * len(self.title)]
        lines.append(f"{self.x_label}: " + "  ".join(str(x) for x in self.x_values))
        for name, values in self.data.items():
            formatted = "  ".join(
                f"{v:.4g}" if isinstance(v, float) else str(v) for v in values
            )
            lines.append(f"{name} ({self.y_label}): {formatted}")
        return "\n".join(lines)

    def show(self) -> None:
        """Print the series followed by a blank line."""
        print(self.render())
        print()
