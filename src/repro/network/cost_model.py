"""The α–β link cost model and its estimation from probe measurements.

Following TACCL and the paper (Sec. IV-B), a link is summarized by two
numbers: α, the per-message latency, and β, the inverse bandwidth, so a
message of s bytes takes ``α + β·s`` seconds. The profiler's probe scheme
sends a piece of size ``s`` repeated ``n`` times (cost ``n(α + βs)``) and a
grouped send of ``n·s`` bytes (cost ``α + βns``); several (n, s) settings
give an overdetermined linear system solved by least squares.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import ProfilingError


@dataclass(frozen=True)
class AlphaBeta:
    """One link's fitted properties: latency α (s) and inverse bandwidth β (s/B)."""

    alpha: float
    beta: float

    def __post_init__(self) -> None:
        if self.alpha < 0 or self.beta < 0:
            raise ProfilingError(f"negative alpha-beta estimate: {self}")

    @property
    def bandwidth(self) -> float:
        """1/β in bytes/second (``inf`` for an ideal zero-β link)."""
        return float("inf") if self.beta == 0 else 1.0 / self.beta

    def transfer_time(self, nbytes: float) -> float:
        """α + β·nbytes — the model's cost of a single message."""
        if nbytes < 0:
            raise ProfilingError("transfer_time: negative size")
        return self.alpha + self.beta * nbytes

    def chunked_time(self, total_bytes: float, chunk_bytes: float) -> float:
        """Cost of sending ``total_bytes`` as back-to-back chunks (no pipeline
        overlap): ``ceil(total/chunk)·α + β·total``."""
        if chunk_bytes <= 0:
            raise ProfilingError("chunked_time: chunk size must be positive")
        num_chunks = int(np.ceil(total_bytes / chunk_bytes)) if total_bytes > 0 else 0
        return num_chunks * self.alpha + self.beta * total_bytes


#: One probe observation: (number of messages n, bytes per message s,
#: measured total time).
Measurement = Tuple[int, float, float]


def fit_alpha_beta(measurements: Sequence[Measurement]) -> AlphaBeta:
    """Least-squares fit of (α, β) from probe measurements.

    Each measurement (n, s, t) contributes the equation ``n·α + (n·s)·β = t``
    (the grouped send is simply n=1 with size n·s). At least two
    measurements with distinct (n, n·s) directions are required.
    """
    rows: List[Tuple[float, float]] = []
    times: List[float] = []
    for n, s, t in measurements:
        if n < 1 or s < 0 or t < 0:
            raise ProfilingError(f"invalid measurement (n={n}, s={s}, t={t})")
        rows.append((float(n), float(n) * float(s)))
        times.append(float(t))
    if len(rows) < 2:
        raise ProfilingError("need at least two probe measurements to fit alpha-beta")
    design = np.array(rows)
    if np.linalg.matrix_rank(design) < 2:
        raise ProfilingError("probe measurements are degenerate; vary n and s")
    solution, *_ = np.linalg.lstsq(design, np.array(times), rcond=None)
    alpha, beta = float(solution[0]), float(solution[1])
    # Numerical noise can push a tiny negative; clamp rather than reject.
    return AlphaBeta(alpha=max(0.0, alpha), beta=max(0.0, beta))


def relative_error(estimate: AlphaBeta, truth: AlphaBeta) -> Tuple[float, float]:
    """(α, β) relative errors, guarding zero denominators."""

    def rel(a: float, b: float) -> float:
        return abs(a - b) / b if b else abs(a - b)

    return rel(estimate.alpha, truth.alpha), rel(estimate.beta, truth.beta)
