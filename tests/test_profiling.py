"""Tests for probe plans, the round schedule, and the profiler."""

import pytest

from repro.errors import ProfilingError
from repro.hardware import Cluster, make_hetero_cluster, make_homo_cluster
from repro.profiling import DEFAULT_PROBE_PLAN, ProbePlan, Profiler, inter_instance_rounds
from repro.profiling.rounds import validate_round
from repro.simulation import Simulator
from repro.topology import LogicalTopology
from repro.topology.graph import gpu_node, nic_node


class TestProbePlan:
    def test_default_plan_valid(self):
        assert DEFAULT_PROBE_PLAN.total_probe_bytes > 0

    def test_needs_settings(self):
        with pytest.raises(ProfilingError):
            ProbePlan(settings=())

    def test_needs_multi_piece_setting(self):
        with pytest.raises(ProfilingError):
            ProbePlan(settings=((1, 1024.0),))

    def test_rejects_bad_setting(self):
        with pytest.raises(ProfilingError):
            ProbePlan(settings=((0, 1024.0),))

    def test_total_bytes(self):
        plan = ProbePlan(settings=((2, 100.0),))
        assert plan.total_probe_bytes == pytest.approx(400.0)


class TestRounds:
    def test_round_count(self):
        assert len(inter_instance_rounds(4)) == 3
        assert inter_instance_rounds(1) == []

    def test_every_ordered_pair_covered_once(self):
        n = 5
        pairs = [flow for rnd in inter_instance_rounds(n) for flow in rnd]
        expected = {(a, b) for a in range(n) for b in range(n) if a != b}
        assert set(pairs) == expected
        assert len(pairs) == len(expected)

    def test_no_port_interference_in_any_round(self):
        for n in range(2, 9):
            for rnd in inter_instance_rounds(n):
                assert validate_round(rnd)

    def test_validate_round_catches_conflict(self):
        assert not validate_round([(0, 1), (0, 2)])
        assert not validate_round([(0, 2), (1, 2)])

    def test_rejects_zero_instances(self):
        with pytest.raises(ValueError):
            inter_instance_rounds(0)


class TestProfiler:
    def make(self, specs):
        sim = Simulator()
        cluster = Cluster(sim, specs)
        topo = LogicalTopology.from_cluster(cluster)
        return sim, cluster, topo, Profiler(topo)

    def test_profile_covers_all_profiled_edges(self):
        _, _, topo, profiler = self.make(make_homo_cluster(num_servers=2))
        result = profiler.profile()
        expected = {(e.src, e.dst) for e in topo.profiled_edges()}
        assert set(result.estimates) == expected

    def test_estimates_installed_on_topology(self):
        _, _, topo, profiler = self.make(make_homo_cluster(num_servers=2))
        profiler.profile()
        for edge in topo.profiled_edges():
            assert edge.estimate is not None

    def test_fitted_bandwidth_close_to_truth(self):
        """Fitted bandwidth matches what one stream achieves under the
        profiling schedule: every instance sends and receives one probe at
        a time, so on NICs whose duplex budget is below 2x line rate the
        observed rate is the duplex share — which is also what training
        traffic experiences, making it the *more* faithful estimate."""
        _, _, topo, profiler = self.make(make_hetero_cluster())
        result = profiler.profile()
        for edge in topo.profiled_edges():
            truth = edge.ground_truth()
            duplex_caps = [
                link.capacity / 2 for link in edge.fluid_links if "duplex" in link.name
            ]
            expected = min([truth.bandwidth] + duplex_caps)
            fitted = result.estimates[(edge.src, edge.dst)]
            assert fitted.bandwidth == pytest.approx(expected, rel=0.02)
            assert fitted.alpha == pytest.approx(truth.alpha, rel=0.1, abs=1e-6)

    def test_profiling_sees_shaped_bandwidth(self):
        sim, cluster, topo, profiler = self.make(make_homo_cluster(num_servers=2))
        cluster.set_nic_bandwidth(1, 2e9)
        result = profiler.profile()
        est = result.estimates[(nic_node(0), nic_node(1))]
        assert est.bandwidth == pytest.approx(2e9, rel=0.05)

    def test_duration_positive_and_recorded(self):
        _, _, _, profiler = self.make(make_homo_cluster(num_servers=2))
        result = profiler.profile()
        assert result.duration > 0
        assert result.finished_at > result.started_at

    def test_passes_counted(self):
        _, _, _, profiler = self.make(make_homo_cluster(num_servers=2))
        profiler.profile()
        profiler.profile()
        assert profiler.passes_completed == 2

    def test_single_instance_profiles_only_nvlink(self):
        _, _, topo, profiler = self.make(make_homo_cluster(num_servers=1))
        result = profiler.profile()
        assert all(src.is_gpu and dst.is_gpu for src, dst in result.estimates)
        assert len(result.estimates) == 12  # 4 GPUs, 6 pairs, both directions

    def test_result_bandwidth_accessor(self):
        _, _, _, profiler = self.make(make_homo_cluster(num_servers=2))
        result = profiler.profile()
        assert result.bandwidth(nic_node(0), nic_node(1)) == pytest.approx(7.5e9, rel=0.05)

    def test_second_pass_tracks_bandwidth_change(self):
        """The adaptivity hook: re-profiling reflects mid-training shaping."""
        sim, cluster, topo, profiler = self.make(make_homo_cluster(num_servers=2))
        first = profiler.profile()
        assert first.bandwidth(nic_node(0), nic_node(1)) == pytest.approx(7.5e9, rel=0.05)
        cluster.set_nic_bandwidth(0, 5e9, direction="egress")
        second = profiler.profile()
        assert second.bandwidth(nic_node(0), nic_node(1)) == pytest.approx(5e9, rel=0.05)
