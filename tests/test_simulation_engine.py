"""Unit tests for the discrete-event engine."""

import pytest

from repro.errors import ProcessInterrupt, SimulationError
from repro.simulation import Simulator, Store
from repro.simulation.resources import Semaphore


def test_timeout_advances_clock():
    sim = Simulator()
    seen = []

    def proc(sim):
        yield sim.timeout(2.5)
        seen.append(sim.now)

    sim.process(proc(sim))
    sim.run()
    assert seen == [2.5]


def test_timeout_value_passthrough():
    sim = Simulator()
    result = []

    def proc(sim):
        value = yield sim.timeout(1.0, value="payload")
        result.append(value)

    sim.process(proc(sim))
    sim.run()
    assert result == ["payload"]


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.timeout(-1.0)


def test_process_return_value():
    sim = Simulator()

    def child(sim):
        yield sim.timeout(1.0)
        return 42

    def parent(sim, out):
        value = yield sim.process(child(sim))
        out.append(value)

    out = []
    sim.process(parent(sim, out))
    sim.run()
    assert out == [42]


def test_processes_interleave_in_time_order():
    sim = Simulator()
    order = []

    def proc(sim, name, delay):
        yield sim.timeout(delay)
        order.append(name)

    sim.process(proc(sim, "b", 2.0))
    sim.process(proc(sim, "a", 1.0))
    sim.process(proc(sim, "c", 3.0))
    sim.run()
    assert order == ["a", "b", "c"]


def test_event_succeed_wakes_waiter():
    sim = Simulator()
    gate = sim.event()
    woke = []

    def waiter(sim):
        value = yield gate
        woke.append((sim.now, value))

    def opener(sim):
        yield sim.timeout(5.0)
        gate.succeed("open")

    sim.process(waiter(sim))
    sim.process(opener(sim))
    sim.run()
    assert woke == [(5.0, "open")]


def test_event_double_trigger_rejected():
    sim = Simulator()
    event = sim.event()
    event.succeed(1)
    with pytest.raises(SimulationError):
        event.succeed(2)


def test_event_fail_raises_in_waiter():
    sim = Simulator()
    gate = sim.event()
    caught = []

    def waiter(sim):
        try:
            yield gate
        except ValueError as exc:
            caught.append(str(exc))

    sim.process(waiter(sim))
    gate.fail(ValueError("boom"))
    sim.run()
    assert caught == ["boom"]


def test_unhandled_process_exception_surfaces_at_run():
    sim = Simulator()

    def bad(sim):
        yield sim.timeout(1.0)
        raise RuntimeError("unhandled")

    sim.process(bad(sim))
    with pytest.raises(RuntimeError, match="unhandled"):
        sim.run()


def test_yielding_non_event_fails_process():
    sim = Simulator()

    def bad(sim):
        yield 123

    sim.process(bad(sim))
    with pytest.raises(SimulationError, match="expected an Event"):
        sim.run()


def test_run_until_stops_clock_exactly():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(10.0)

    sim.process(proc(sim))
    sim.run(until=4.0)
    assert sim.now == 4.0
    sim.run()
    assert sim.now == 10.0


def test_run_until_complete_returns_value():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(3.0)
        return "done"

    p = sim.process(proc(sim))
    assert sim.run_until_complete(p) == "done"
    assert sim.now == 3.0


def test_run_until_complete_detects_deadlock():
    sim = Simulator()
    gate = sim.event()  # never triggered

    def proc(sim):
        yield gate

    p = sim.process(proc(sim))
    with pytest.raises(SimulationError, match="deadlock"):
        sim.run_until_complete(p)


def test_all_of_collects_values_in_order():
    sim = Simulator()
    out = []

    def proc(sim):
        values = yield sim.all_of([sim.timeout(3.0, "c"), sim.timeout(1.0, "a")])
        out.append((sim.now, values))

    sim.process(proc(sim))
    sim.run()
    assert out == [(3.0, ["c", "a"])]


def test_any_of_returns_first():
    sim = Simulator()
    out = []

    def proc(sim):
        index, value = yield sim.any_of([sim.timeout(3.0, "slow"), sim.timeout(1.0, "fast")])
        out.append((sim.now, index, value))

    sim.process(proc(sim))
    sim.run()
    assert out == [(1.0, 1, "fast")]


def test_interrupt_raises_in_target():
    sim = Simulator()
    caught = []

    def sleeper(sim):
        try:
            yield sim.timeout(100.0)
        except ProcessInterrupt as exc:
            caught.append((sim.now, exc.cause))

    def interrupter(sim, target):
        yield sim.timeout(2.0)
        target.interrupt("wake up")

    target = sim.process(sleeper(sim))
    sim.process(interrupter(sim, target))
    sim.run()
    assert caught == [(2.0, "wake up")]


def test_interrupt_finished_process_rejected():
    sim = Simulator()

    def quick(sim):
        yield sim.timeout(1.0)

    p = sim.process(quick(sim))
    sim.run()
    with pytest.raises(SimulationError):
        p.interrupt()


class TestStore:
    def test_fifo_order(self):
        sim = Simulator()
        store = Store(sim)
        got = []

        def producer(sim):
            for i in range(3):
                yield store.put(i)
                yield sim.timeout(1.0)

        def consumer(sim):
            for _ in range(3):
                item = yield store.get()
                got.append(item)

        sim.process(producer(sim))
        sim.process(consumer(sim))
        sim.run()
        assert got == [0, 1, 2]

    def test_get_blocks_until_put(self):
        sim = Simulator()
        store = Store(sim)
        got = []

        def consumer(sim):
            item = yield store.get()
            got.append((sim.now, item))

        def producer(sim):
            yield sim.timeout(7.0)
            yield store.put("x")

        sim.process(consumer(sim))
        sim.process(producer(sim))
        sim.run()
        assert got == [(7.0, "x")]

    def test_capacity_blocks_putter(self):
        sim = Simulator()
        store = Store(sim, capacity=1)
        times = []

        def producer(sim):
            yield store.put("a")
            times.append(("a-stored", sim.now))
            yield store.put("b")
            times.append(("b-stored", sim.now))

        def consumer(sim):
            yield sim.timeout(5.0)
            yield store.get()

        sim.process(producer(sim))
        sim.process(consumer(sim))
        sim.run()
        assert times == [("a-stored", 0.0), ("b-stored", 5.0)]

    def test_try_get_nonblocking(self):
        sim = Simulator()
        store = Store(sim)
        assert store.try_get() is None
        store.put("x")
        sim.run()
        assert store.try_get() == "x"

    def test_zero_capacity_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            Store(sim, capacity=0)


class TestSemaphore:
    def test_mutual_exclusion(self):
        sim = Simulator()
        sem = Semaphore(sim, slots=1)
        timeline = []

        def worker(sim, name):
            yield sem.acquire()
            timeline.append((name, "in", sim.now))
            yield sim.timeout(2.0)
            timeline.append((name, "out", sim.now))
            sem.release()

        sim.process(worker(sim, "w1"))
        sim.process(worker(sim, "w2"))
        sim.run()
        assert timeline == [
            ("w1", "in", 0.0),
            ("w1", "out", 2.0),
            ("w2", "in", 2.0),
            ("w2", "out", 4.0),
        ]

    def test_release_unheld_rejected(self):
        sim = Simulator()
        sem = Semaphore(sim)
        with pytest.raises(SimulationError):
            sem.release()

    def test_available_counts(self):
        sim = Simulator()
        sem = Semaphore(sim, slots=3)
        sem.acquire()
        sem.acquire()
        assert sem.available == 1


class TestEventBatching:
    """step() drains same-(time, priority) runs; semantics must not change."""

    @staticmethod
    def _burst_scenario(sim):
        """Processes that pile many events onto the same instants."""
        order = []

        def worker(sim, name, delays):
            for delay in delays:
                yield sim.timeout(delay)
                order.append((name, sim.now))

        def spawner(sim):
            yield sim.timeout(1.0)
            # Same-instant spawns: resumptions are urgent, timeouts normal.
            for i in range(4):
                sim.process(worker(sim, f"late{i}", [0.0, 1.0]))
            order.append(("spawner", sim.now))

        for i in range(4):
            sim.process(worker(sim, f"w{i}", [1.0, 0.0, 1.0]))
        sim.process(spawner(sim))
        return order

    def test_batched_matches_unbatched_exactly(self):
        runs = []
        for batch in (True, False):
            sim = Simulator(batch_events=batch)
            assert sim.batch_events is batch
            order = self._burst_scenario(sim)
            sim.run()
            runs.append(order)
        assert runs[0] == runs[1]

    def test_step_count_shrinks_under_batching(self):
        counts = []
        for batch in (True, False):
            sim = Simulator(batch_events=batch)
            self._burst_scenario(sim)
            steps = 0
            while sim.peek() != float("inf"):
                sim.step()
                steps += 1
            counts.append(steps)
        assert counts[0] < counts[1]

    def test_exception_mid_batch_requeues_the_rest(self):
        sim = Simulator(batch_events=True)
        seen = []

        def ok(sim, name):
            yield sim.timeout(1.0)
            seen.append(name)

        def bad(sim):
            yield sim.timeout(1.0)
            raise RuntimeError("boom")

        sim.process(ok(sim, "a"))
        sim.process(bad(sim))
        sim.process(ok(sim, "b"))
        with pytest.raises(RuntimeError, match="boom"):
            sim.run()
        # The batch aborted cleanly: the trailing same-instant event is
        # still queued, not lost, and a fresh run() drains it.
        assert sim.peek() == 1.0
        sim.run()
        assert seen == ["a", "b"]

    def test_run_until_matches_unbatched_clock(self):
        for batch in (True, False):
            sim = Simulator(batch_events=batch)
            self._burst_scenario(sim)
            sim.run(until=1.0)
            assert sim.now == 1.0
            assert sim.peek() == 2.0
