"""Tests for the alpha-beta cost model and fitting."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ProfilingError
from repro.network.cost_model import AlphaBeta, fit_alpha_beta, relative_error


class TestAlphaBeta:
    def test_transfer_time(self):
        ab = AlphaBeta(alpha=1e-5, beta=1e-9)
        assert ab.transfer_time(1e6) == pytest.approx(1e-5 + 1e-3)

    def test_bandwidth_is_inverse_beta(self):
        ab = AlphaBeta(alpha=0.0, beta=1e-10)
        assert ab.bandwidth == pytest.approx(1e10)

    def test_zero_beta_bandwidth_infinite(self):
        assert AlphaBeta(0.0, 0.0).bandwidth == float("inf")

    def test_negative_rejected(self):
        with pytest.raises(ProfilingError):
            AlphaBeta(-1e-6, 1e-9)

    def test_chunked_time_counts_alpha_per_chunk(self):
        ab = AlphaBeta(alpha=1e-5, beta=1e-9)
        t = ab.chunked_time(total_bytes=10e6, chunk_bytes=1e6)
        assert t == pytest.approx(10 * 1e-5 + 10e6 * 1e-9)

    def test_chunked_time_zero_total(self):
        ab = AlphaBeta(alpha=1e-5, beta=1e-9)
        assert ab.chunked_time(0, 1e6) == 0.0

    def test_chunked_time_rejects_bad_chunk(self):
        with pytest.raises(ProfilingError):
            AlphaBeta(0, 0).chunked_time(1e6, 0)

    def test_transfer_time_rejects_negative(self):
        with pytest.raises(ProfilingError):
            AlphaBeta(0, 0).transfer_time(-1)


class TestFit:
    def synthesize(self, alpha, beta, plan):
        """Noiseless measurements exactly following the model."""
        measurements = []
        for n, s in plan:
            measurements.append((n, s, n * (alpha + beta * s)))
            measurements.append((1, n * s, alpha + beta * n * s))
        return measurements

    def test_exact_recovery(self):
        truth = AlphaBeta(alpha=3e-6, beta=8e-11)
        fit = fit_alpha_beta(self.synthesize(truth.alpha, truth.beta, [(8, 65536), (2, 2**21)]))
        a_err, b_err = relative_error(fit, truth)
        assert a_err < 1e-6
        assert b_err < 1e-6

    def test_requires_two_measurements(self):
        with pytest.raises(ProfilingError):
            fit_alpha_beta([(1, 100.0, 1.0)])

    def test_rejects_degenerate_rows(self):
        # Proportional (n, n*s) rows cannot separate alpha from beta.
        with pytest.raises(ProfilingError):
            fit_alpha_beta([(1, 100.0, 1.0), (2, 100.0, 2.0)])

    def test_rejects_invalid_measurement(self):
        with pytest.raises(ProfilingError):
            fit_alpha_beta([(0, 100.0, 1.0), (1, 100.0, 1.0)])

    def test_noise_tolerance(self):
        import numpy as np

        rng = np.random.default_rng(7)
        truth = AlphaBeta(alpha=5e-6, beta=1e-10)
        measurements = []
        for n, s in [(8, 65536), (4, 524288), (2, 2**21)]:
            t = n * (truth.alpha + truth.beta * s)
            measurements.append((n, s, t * (1 + rng.normal(0, 0.01))))
            t = truth.alpha + truth.beta * n * s
            measurements.append((1, n * s, t * (1 + rng.normal(0, 0.01))))
        fit = fit_alpha_beta(measurements)
        a_err, b_err = relative_error(fit, truth)
        assert a_err < 0.25  # alpha is small and noise-sensitive
        assert b_err < 0.05

    @settings(max_examples=50, deadline=None)
    @given(
        alpha=st.floats(min_value=1e-7, max_value=1e-4),
        beta=st.floats(min_value=1e-12, max_value=1e-8),
    )
    def test_property_noiseless_recovery(self, alpha, beta):
        fit = fit_alpha_beta(self.synthesize(alpha, beta, [(8, 65536), (2, 2**21)]))
        a_err, b_err = relative_error(fit, AlphaBeta(alpha, beta))
        assert a_err < 1e-4
        assert b_err < 1e-4
