"""Typed anomaly verdicts and the append-only observe log records.

A :class:`AnomalyVerdict` is what the watchdog emits when a detector
fires: *what* kind of anomaly, *where* (the subject — a logical-topology
link, a rank, or the iteration stream itself), *when* on the sim clock,
and the evidence window (the timestamped samples that fired the CUSUM).
Verdicts are the causal anchors of the observe log: every targeted
re-probe record cites the verdict ids that asked for it, and every
re-synthesis record cites the re-probe that refreshed the costs — the
``--observe`` lint walks exactly this chain.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ObserveError


class AnomalyKind(enum.Enum):
    """The four anomaly classes the watchdog distinguishes."""

    #: A link's observed throughput shifted away from its baseline
    #: (sustained sag or recovery on one link).
    BANDWIDTH_DRIFT = "bandwidth-drift"
    #: The iteration-time stream shifted upward while link signals degrade
    #: together — an external workload is contending for the fabric.
    INTERFERENCE_ONSET = "interference-onset"
    #: The ski-rental wait ratios shifted: some rank(s) are persistently
    #: late rather than occasionally jittered.
    STRAGGLER_EMERGENCE = "straggler-emergence"
    #: The α–β fit residuals jumped: the measured cost structure no longer
    #: matches the model, suggesting the physical topology changed.
    TOPOLOGY_CHANGE = "topology-change"


#: Observe-log record types, in causal order.
VERDICT_RECORD = "verdict"
REPROBE_RECORD = "reprobe"
RESYNTHESIS_RECORD = "resynthesis"
CONFIG_RECORD = "observe-config"


@dataclass(frozen=True)
class AnomalyVerdict:
    """One detector firing, with the evidence window attached."""

    verdict_id: str
    kind: AnomalyKind
    #: What the detector watched: ``link:<src>-><dst>``, ``rank<k>``,
    #: ``iteration``, or ``fit:<src>-><dst>``.
    subject: str
    detected_at: float
    iteration: int
    #: Sustained shift direction (``"up"``/``"down"``).
    direction: str
    #: The CUSUM statistic at firing time (how far past the threshold).
    statistic: float
    #: Baseline the evidence is measured against (EWMA mean).
    baseline: float
    #: ``(sim_time, value)`` samples that drove the firing, oldest first.
    evidence: Tuple[Tuple[float, float], ...] = ()
    #: Logical-topology links implicated by this verdict (``"gX->gY"`` /
    #: ``"nA->nB"`` strings); empty when the verdict names no link.
    implicated_links: Tuple[str, ...] = ()
    #: The critical-path engine's top-1 bottleneck link for the iteration
    #: that raised this verdict, when it corroborates the implication
    #: (``None`` when no attribution ran or the culprit lies elsewhere).
    attributed_link: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.evidence:
            raise ObserveError(f"verdict {self.verdict_id} carries no evidence window")
        if self.iteration < 0:
            raise ObserveError("verdict iteration must be non-negative")

    def to_record(self) -> Dict[str, Any]:
        """The verdict as one observe-log record (JSON-able, key-stable)."""
        return {
            "type": VERDICT_RECORD,
            "id": self.verdict_id,
            "kind": self.kind.value,
            "subject": self.subject,
            "time": self.detected_at,
            "iteration": self.iteration,
            "direction": self.direction,
            "statistic": self.statistic,
            "baseline": self.baseline,
            "evidence": [list(sample) for sample in self.evidence],
            "implicated_links": list(self.implicated_links),
            "attributed_link": self.attributed_link,
        }


@dataclass
class ObserveLog:
    """The watchdog's append-only, replay-comparable action log.

    First record is always the config header (so the lint can check the
    "no verdicts while disabled" rule); the rest are verdict / re-probe /
    re-synthesis records in emission order. Serialization matches the
    telemetry exporters' discipline — sorted keys, compact separators —
    so same-seed runs export byte-identical logs.
    """

    records: List[Dict[str, Any]] = field(default_factory=list)

    def append(self, record: Dict[str, Any]) -> Dict[str, Any]:
        """Append one record (dict with a ``type`` key)."""
        if "type" not in record:
            raise ObserveError("observe-log records need a 'type' key")
        self.records.append(record)
        return record

    def of_type(self, record_type: str) -> List[Dict[str, Any]]:
        """All records of one type, in emission order."""
        return [r for r in self.records if r.get("type") == record_type]

    @property
    def verdicts(self) -> List[Dict[str, Any]]:
        """All verdict records."""
        return self.of_type(VERDICT_RECORD)

    @property
    def reprobes(self) -> List[Dict[str, Any]]:
        """All targeted re-probe records."""
        return self.of_type(REPROBE_RECORD)

    @property
    def resyntheses(self) -> List[Dict[str, Any]]:
        """All re-synthesis trigger records."""
        return self.of_type(RESYNTHESIS_RECORD)

    def to_jsonl(self) -> str:
        """The log as JSONL text (byte-identical across same-seed runs)."""
        return (
            "\n".join(
                json.dumps(record, sort_keys=True, separators=(",", ":"))
                for record in self.records
            )
            + "\n"
            if self.records
            else ""
        )

    def __len__(self) -> int:
        return len(self.records)


def parse_observe_jsonl(text: str) -> List[Dict[str, Any]]:
    """Parse observe-log JSONL text back into record dicts."""
    records: List[Dict[str, Any]] = []
    for line_no, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ObserveError(f"line {line_no}: invalid JSON: {exc}") from exc
        if not isinstance(record, dict):
            raise ObserveError(f"line {line_no}: expected an object")
        records.append(record)
    return records


def link_endpoints(link: str) -> Tuple[str, str]:
    """Split a ``"g0->n1"``-style link name into its endpoint node names."""
    if "->" not in link:
        raise ObserveError(f"not a link name: {link!r}")
    src, dst = link.split("->", 1)
    return src, dst


def links_touching(links: Sequence[str], node_name: str) -> List[str]:
    """The subset of ``links`` with ``node_name`` as either endpoint."""
    out = []
    for link in links:
        src, dst = link_endpoints(link)
        if node_name in (src, dst):
            out.append(link)
    return out
