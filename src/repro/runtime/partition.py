"""Tensor partitioning: sub-collective partitions and chunk boundaries.

Strategies speak bytes; tensors are numpy arrays of elements. The helpers
here convert between the two and guarantee exact coverage: the M partition
slices tile the tensor, and each partition's chunk slices tile the
partition (the last chunk may be short).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import CommunicatorError


def partition_ranges(total_elements: int, weights: Sequence[float]) -> List[Tuple[int, int]]:
    """Split ``total_elements`` into len(weights) contiguous ranges.

    Range sizes are proportional to the weights (typically the S_m byte
    sizes), rounded so the ranges exactly tile [0, total_elements).
    """
    if total_elements < 0:
        raise CommunicatorError("negative element count")
    if not weights or any(w < 0 for w in weights):
        raise CommunicatorError("weights must be non-empty and non-negative")
    total_weight = float(sum(weights))
    if total_weight == 0:
        raise CommunicatorError("weights sum to zero")
    ranges: List[Tuple[int, int]] = []
    start = 0
    cumulative = 0.0
    for index, weight in enumerate(weights):
        cumulative += weight
        if index == len(weights) - 1:
            end = total_elements
        else:
            end = int(round(total_elements * cumulative / total_weight))
        end = max(end, start)
        ranges.append((start, end))
        start = end
    return ranges


def chunk_ranges(start: int, end: int, chunk_elements: int) -> List[Tuple[int, int]]:
    """Tile [start, end) into chunks of ``chunk_elements`` (last may be short)."""
    if chunk_elements < 1:
        raise CommunicatorError("chunk must hold at least one element")
    if end < start:
        raise CommunicatorError("invalid range")
    chunks: List[Tuple[int, int]] = []
    position = start
    while position < end:
        chunks.append((position, min(position + chunk_elements, end)))
        position += chunk_elements
    return chunks


def elements_for_bytes(nbytes: float, itemsize: int) -> int:
    """How many whole elements fit a byte budget (at least one)."""
    if itemsize <= 0:
        raise CommunicatorError("itemsize must be positive")
    return max(1, int(nbytes // itemsize))


def check_uniform_inputs(inputs: dict) -> Tuple[int, np.dtype]:
    """Validate that all rank tensors share length and dtype."""
    if not inputs:
        raise CommunicatorError("no input tensors")
    arrays = list(inputs.values())
    length = len(arrays[0])
    dtype = arrays[0].dtype
    for rank, array in inputs.items():
        if len(array) != length:
            raise CommunicatorError(f"rank {rank}: tensor length {len(array)} != {length}")
        if array.dtype != dtype:
            raise CommunicatorError(f"rank {rank}: dtype {array.dtype} != {dtype}")
    return length, dtype
