"""End-to-end chaos execution: a fault plan driven through the full stack.

:class:`ChaosRunner` owns one simulated cluster and replays one
:class:`~repro.chaos.plan.FaultPlan` against it, iteration by iteration:

1. the :class:`~repro.chaos.injector.ChaosInjector` resolves the plan into
   per-rank ready delays (and has already armed link faults on the fluid
   network);
2. the relay coordinator's ski-rental rule decides wait-vs-proceed on
   those *injected* ready times, and the two-phase adaptive AllReduce
   executes on the unchanged graph;
3. workers the :class:`~repro.relay.faults.FaultDetector` declares faulty
   are evicted from the group, the data loader redistributes shards so the
   global batch stays constant, and the next iteration's strategy is
   **re-synthesized on the shrunk topology**;
4. a transient crasher rejoins at its planned iteration: membership grows
   back, the strategy is re-synthesized again, and — the regression this
   module guards — the rejoiner gets grace for the iteration in which it
   has not yet reported (it is *unreported*, not faulty).

The runner drives the coordinator through a
:class:`~repro.recovery.control_plane.RecoveringControlPlane`: membership
changes install strategies via two-phase prepare/commit, every decision is
journaled, and the plan's :class:`~repro.chaos.plan.CoordinatorCrashFault`
and :class:`~repro.chaos.plan.PartitionFault` events exercise lease
takeover, journal replay, rollback, and epoch fencing — all of it without
touching the data path, so the exactness checks below still hold.

Every iteration's outputs are checked against the bitwise-exact reference
(the elementwise sum over the ranks that actually contributed), so the
conformance suite's central claim — chunked, pipelined, two-phase,
fault-ridden execution never changes the arithmetic — is asserted on
every run, not just in dedicated tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.chaos.injector import ChaosInjector
from repro.chaos.plan import DECIDE_PHASE, TRANSITION_PHASE, FaultPlan
from repro.critpath.consumer import CritpathConsumer
from repro.errors import ChaosError
from repro.hardware.cluster import Cluster
from repro.hardware.instance import InstanceSpec
from repro.observe.watchdog import ObserveConfig, Watchdog
from repro.profiling.profiler import Profiler
from repro.recovery.control_plane import RecoveringControlPlane
from repro.relay.coordinator import AdaptiveAllReduce, AdaptiveResult
from repro.simulation.engine import Simulator
from repro.simulation.records import TraceRecorder
from repro.synthesis.optimizer import Synthesizer
from repro.synthesis.strategy import Primitive, Strategy
from repro.topology.graph import LogicalTopology
from repro.training.data import ShardedDataLoader


@dataclass
class IterationOutcome:
    """What one chaos-driven iteration did and produced."""

    iteration: int
    participants: List[int]
    contributors: List[int]
    proceeded: bool
    relays: List[int]
    evicted: List[int]
    rejoined: List[int]
    outputs: Dict[int, np.ndarray]
    expected: np.ndarray
    duration: float
    #: Fencing epoch and lease holder under which the iteration ran.
    epoch: int = 1
    coordinator: int = 0

    @property
    def exact(self) -> bool:
        """Whether every contributor's output equals the reference sum."""
        return all(
            np.array_equal(self.outputs[rank], self.expected)
            for rank in self.contributors
        )


@dataclass
class ChaosRunReport:
    """Everything a conformance test needs to compare two replays."""

    plan_signature: Tuple
    iterations: List[IterationOutcome] = field(default_factory=list)
    event_trace: List[Tuple] = field(default_factory=list)
    final_members: List[int] = field(default_factory=list)
    resyntheses: int = 0
    #: Recovery-control-plane tallies (all deterministic per seed).
    elections: int = 0
    fenced_messages: int = 0
    rollbacks: int = 0
    replayed_records: int = 0
    #: The coordinator journal's stable content, for replay comparison.
    log_signature: Tuple = ()

    @property
    def all_exact(self) -> bool:
        """Whether every iteration's aggregation was bitwise exact."""
        return all(outcome.exact for outcome in self.iterations)

    def final_outputs(self) -> Dict[int, np.ndarray]:
        """Last iteration's per-rank outputs (the replay-equality anchor)."""
        return self.iterations[-1].outputs if self.iterations else {}


class ChaosRunner:
    """Replays one fault plan over a fresh simulated cluster."""

    def __init__(
        self,
        specs: Sequence[InstanceSpec],
        plan: FaultPlan,
        length: int = 2048,
        byte_scale: float = 1.0,
        max_chunks: Optional[int] = 8,
        recorder: Optional[TraceRecorder] = None,
        dataset_size: int = 4096,
        observe: Optional[ObserveConfig] = None,
    ):
        self.sim = Simulator()
        self.cluster = Cluster(self.sim, specs)
        if recorder is not None:
            self.cluster.network.attach_recorder(recorder)
        self.topology = LogicalTopology.from_cluster(self.cluster)
        self.synthesizer = Synthesizer(self.topology)
        self.plan = plan
        self.length = length
        self.byte_scale = byte_scale
        self.max_chunks = max_chunks
        self.injector = ChaosInjector(self.cluster, plan, recorder=recorder)
        ranks = [gpu.rank for gpu in self.cluster.gpus]
        self.control_plane = RecoveringControlPlane(
            self.topology, members=ranks, seed=plan.seed
        )
        self.adaptive = AdaptiveAllReduce(
            self.topology, seed=plan.seed, control_plane=self.control_plane
        )
        if any(c.rank not in ranks for c in plan.crashes):
            raise ChaosError("plan crashes ranks outside the cluster")
        if any(r not in ranks for p in plan.partitions for r in p.ranks):
            raise ChaosError("plan partitions ranks outside the cluster")
        self.members: List[int] = sorted(ranks)
        self.loader = ShardedDataLoader(
            dataset_size=dataset_size, global_batch=len(ranks) * 8, workers=list(ranks)
        )
        self._strategy: Optional[Strategy] = None
        self._strategy_members: Optional[Tuple[int, ...]] = None
        self.resyntheses = 0
        # Closed-loop observability: a watchdog on the live telemetry
        # stream drives targeted re-probes and hysteresis-gated
        # re-synthesis through the same transactional install path the
        # membership changes use. Requires an enabled telemetry hub.
        self.watchdog: Optional[Watchdog] = None
        self.profiler: Optional[Profiler] = None
        self.critpath: Optional[CritpathConsumer] = None
        if observe is not None and observe.enabled:
            self.profiler = Profiler(self.topology)
            # Streaming critical-path attribution rides the same hub the
            # watchdog consumes: per iteration it names the top bottleneck
            # link, so verdicts cite a culprit and the re-probe narrows to
            # the attributed link instead of every implicated one.
            self.critpath = CritpathConsumer()
            self.watchdog = Watchdog(
                self.topology,
                config=observe,
                profiler=self.profiler,
                current_strategy=lambda: self._strategy,
                resynthesize=self._resynthesize_for_observe,
                synthesizer=self.synthesizer,
                attribution=self.critpath.top_link,
            ).attach()
            if self.watchdog._hub is not None:
                self.watchdog._hub.subscribe(self.critpath)

    # -- strategy management ---------------------------------------------------

    def _strategy_for(
        self, members: Sequence[int], crash_after_prepare: bool = False
    ) -> Strategy:
        """Current strategy, installed transactionally when membership
        changed (or when a between-prepare-and-commit coordinator crash is
        being injected, which forces a re-install of the same strategy so
        the rollback path has a transition to orphan)."""
        key = tuple(members)
        changed = self._strategy is None or self._strategy_members != key
        if not changed and not crash_after_prepare:
            return self._strategy
        committed = self.control_plane.install_strategy(
            members, crash_after_prepare=crash_after_prepare
        )
        if changed:
            first = self._strategy is None
            tensor_size = self.length * 8 * self.byte_scale
            self._strategy = self.synthesizer.synthesize(
                Primitive.ALLREDUCE, tensor_size, list(committed)
            )
            self._strategy_members = key
            if not first:
                self.resyntheses += 1
            self.injector.record(
                "chaos-resynthesis", "synthesizer", key,
                members=list(key),
            )
        return self._strategy

    def _resynthesize_for_observe(self, reason: str) -> Strategy:
        """The watchdog's re-synthesis hook: transactional install of a
        fresh strategy on the *current* membership under the refreshed
        link estimates (two-phase prepare/commit, journaled like every
        membership-driven install)."""
        committed = self.control_plane.install_strategy(self.members)
        tensor_size = self.length * 8 * self.byte_scale
        self._strategy = self.synthesizer.synthesize(
            Primitive.ALLREDUCE, tensor_size, list(committed)
        )
        self._strategy_members = tuple(self.members)
        self.resyntheses += 1
        self.injector.record(
            "chaos-resynthesis", "synthesizer", tuple(self.members),
            members=list(self.members), reason=reason,
        )
        return self._strategy

    # -- inputs ----------------------------------------------------------------

    def _inputs_for(self, rng: np.random.Generator, ranks: Sequence[int]):
        """Integer-valued float64 tensors: float addition over them is exact
        in any order, which is what makes 'bitwise equal' well-defined for
        differently-shaped aggregation trees."""
        return {
            rank: rng.integers(0, 64, self.length).astype(np.float64)
            for rank in ranks
        }

    # -- execution -------------------------------------------------------------

    def run(self) -> ChaosRunReport:
        """Replay the whole plan; returns the comparable report."""
        self.injector.start()
        rng = np.random.default_rng(self.plan.seed)
        report = ChaosRunReport(plan_signature=self.plan.signature())
        all_ranks = sorted(gpu.rank for gpu in self.cluster.gpus)

        for iteration in range(self.plan.iterations):
            # Control-channel partitions: heal the windows ending here
            # before opening the ones starting here.
            for fault in self.plan.partitions_healing_at(iteration):
                healed = self.control_plane.heal(fault.ranks)
                if healed:
                    self.injector.record(
                        "chaos-heal", "control-plane", iteration, tuple(healed),
                        iteration=iteration, ranks=list(healed),
                    )
            for fault in self.plan.partitions_starting_at(iteration):
                isolated = self.control_plane.partition(fault.ranks)
                if isolated:
                    self.injector.record(
                        "chaos-partition", "control-plane", iteration,
                        tuple(isolated),
                        iteration=iteration, ranks=list(isolated),
                    )

            # Rejoin transient crashers whose window ends here (if they
            # were evicted; a crasher that was never detected — e.g. its
            # window fell between collectives — is still a member). A
            # readmitted rank gets a fresh one-shot grace window: its
            # first iteration back may straggle without being re-evicted.
            rejoined = [
                rank
                for rank in self.plan.rejoining_at(iteration)
                if rank not in self.members
            ]
            if rejoined:
                self.members = sorted(set(self.members) | set(rejoined))
                self.loader.readmit(rejoined)
                self.adaptive.fault_detector.arm_grace(rejoined)
                for rank in rejoined:
                    self.injector.record(
                        "chaos-rejoin", f"rank{rank}", iteration, rank,
                        iteration=iteration, rank=rank,
                    )

            participants = list(self.members)
            self.control_plane.begin_iteration(iteration, participants)
            crash = self.plan.coordinator_crash_at(iteration)
            if crash is not None:
                self.injector.record(
                    "chaos-coordinator-crash", "control-plane", iteration,
                    crash.phase,
                    iteration=iteration, phase=crash.phase,
                )
            # Inputs are drawn for the full cluster every iteration so the
            # stream consumed per rank is membership-independent — replays
            # with different eviction timing still agree on tensors.
            inputs_all = self._inputs_for(rng, all_ranks)
            inputs = {rank: inputs_all[rank] for rank in participants}
            ready = self.injector.ready_delays(iteration, participants)
            strategy = self._strategy_for(
                participants,
                crash_after_prepare=(
                    crash is not None and crash.phase == TRANSITION_PHASE
                ),
            )
            if crash is not None and crash.phase == DECIDE_PHASE:
                # The role dies now; the takeover happens inside decide.
                self.control_plane.crash_coordinator()

            if all(delay is None for delay in ready.values()):
                raise ChaosError(f"iteration {iteration}: no worker alive")

            result: AdaptiveResult = self.adaptive.run(
                strategy,
                inputs,
                ready,
                byte_scale=self.byte_scale,
                max_chunks=self.max_chunks,
            )

            faulty = (
                list(result.fault_report.faulty_ranks)
                if result.fault_report is not None
                else []
            )
            contributors = [rank for rank in participants if rank not in faulty]
            expected = np.zeros(self.length, dtype=np.float64)
            for rank in contributors:
                expected += inputs[rank]

            report.iterations.append(
                IterationOutcome(
                    iteration=iteration,
                    participants=participants,
                    contributors=contributors,
                    proceeded=result.decision.proceed,
                    relays=list(result.decision.relays),
                    evicted=faulty,
                    rejoined=rejoined,
                    outputs=result.outputs,
                    expected=expected,
                    duration=result.duration,
                    epoch=self.control_plane.epoch,
                    coordinator=self.control_plane.coordinator,
                )
            )

            if self.watchdog is not None:
                self.watchdog.end_iteration(iteration, result.duration)
            if self.critpath is not None:
                # Attribution windows are per-iteration: drop the spans
                # the watchdog just scored.
                self.critpath.reset()

            if faulty:
                # Eviction: shrink the group, rebalance shards (global
                # batch unchanged), and force re-synthesis next iteration.
                self.members = [r for r in self.members if r not in faulty]
                if not self.members:
                    raise ChaosError("chaos plan evicted the whole group")
                self.loader.redistribute(self.members)
                for rank in sorted(faulty):
                    self.injector.record(
                        "chaos-evict", f"rank{rank}", iteration, rank,
                        iteration=iteration, rank=rank,
                    )

        # Drain the (finite) link-fault processes: the adaptive executor
        # advances time only as far as each collective needs, so a fault
        # window reaching past the last iteration still owes its nominal-
        # bandwidth restoration.
        self.sim.run()

        if self.watchdog is not None:
            if self.critpath is not None and self.watchdog._hub is not None:
                self.watchdog._hub.unsubscribe(self.critpath)
            self.watchdog.detach()

        report.event_trace = list(self.injector.trace)
        report.final_members = list(self.members)
        report.resyntheses = self.resyntheses
        report.elections = self.control_plane.elections
        report.fenced_messages = self.control_plane.fence.fenced
        report.rollbacks = self.control_plane.transition.rollbacks
        report.replayed_records = self.control_plane.replayed_records_total
        report.log_signature = self.control_plane.log.signature()
        return report
