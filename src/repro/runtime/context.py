"""Transmission contexts and their distributed set-up phase (Sec. V-A).

One *transmission context* exists per parallel sub-collective, identified
by a context ID shared across all GPU processes. Setting a context up
allocates the three buffers on every rank, exchanges CUDA-IPC handles
among same-instance peers (an AllGather over the handle tokens), and
exchanges host IPs across instances. The cost is paid once before training
and the registered memory is reused by every later communication request —
reconstruction after a strategy change only re-runs this set-up, which is
the cheap path Fig. 19(c) measures against NCCL's full job restart.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.errors import CommunicatorError
from repro.hardware.cluster import Cluster
from repro.hardware.links import us
from repro.runtime.buffers import BufferRegistry
from repro.synthesis.strategy import Strategy

#: Cost of one cudaMalloc + cudaIpcGetMemHandle pair (order of magnitude
#: from real measurements; the paper only requires it to be non-negligible
#: and one-time).
BUFFER_SETUP_SECONDS = 350e-6
#: Cost of opening one peer's IPC handle (cudaIpcOpenMemHandle).
HANDLE_OPEN_SECONDS = 120e-6
#: One control-plane hop for the handle/IP allgather.
CONTROL_RTT_SECONDS = 200e-6


@dataclass
class TransmissionContext:
    """One sub-collective's communication context on every rank."""

    context_id: int
    participants: List[int]
    buffer_bytes: float
    ready: bool = False

    #: Streams per context: a Reduce thread and a Broadcast thread for
    #: AllReduce (pipelined stages), one thread otherwise.
    num_streams: int = 1


class ContextManager:
    """Sets up and tears down the contexts a strategy needs."""

    def __init__(self, cluster: Cluster, registry: Optional[BufferRegistry] = None):
        self.cluster = cluster
        self.registry = registry or BufferRegistry(cluster)
        self.contexts: Dict[int, TransmissionContext] = {}
        self._next_id = 0

    def plan_contexts(self, strategy: Strategy) -> List[TransmissionContext]:
        """Create (unset-up) contexts for a strategy's sub-collectives."""
        contexts = []
        streams = 2 if strategy.primitive.value == "allreduce" else 1
        for sc in strategy.subcollectives:
            context = TransmissionContext(
                context_id=self._next_id,
                participants=list(strategy.participants),
                buffer_bytes=max(1.0, sc.size),
                num_streams=streams,
            )
            self._next_id += 1
            self.contexts[context.context_id] = context
            contexts.append(context)
        return contexts

    def setup(self, contexts: Sequence[TransmissionContext]):
        """Generator process performing the distributed set-up (Fig. 10).

        Phase 1: every rank allocates local/receive/result buffers and
        exports the receive buffer's IPC handle. Phase 2: an AllGather of
        handles among same-instance ranks (each rank opens every peer's
        handle) and an IP exchange across instances.
        """
        sim = self.cluster.sim
        for context in contexts:
            if context.ready:
                raise CommunicatorError(f"context {context.context_id} already set up")
            # Phase 1: allocation + handle export on every rank (parallel
            # across ranks; one rank's three buffers are sequential).
            for rank in context.participants:
                buffers = self.registry.of(rank)
                prefix = f"ctx{context.context_id}"
                buffers.register(f"{prefix}:local", context.buffer_bytes)
                buffers.register(f"{prefix}:receive", context.buffer_bytes)
                buffers.register(f"{prefix}:result", context.buffer_bytes)
                self.registry.publish_handle(context.context_id, rank, f"{prefix}:receive")
            yield sim.timeout(3 * BUFFER_SETUP_SECONDS)

            # Phase 2: IPC-handle allgather within each instance + opening
            # each peer handle; IP exchange across instances.
            max_peers = 0
            instance_ids = set()
            for rank in context.participants:
                gpu = self.cluster.gpu(rank)
                instance_ids.add(gpu.instance_id)
                peers = [
                    r
                    for r in context.participants
                    if r != rank and self.cluster.gpu(r).instance_id == gpu.instance_id
                ]
                max_peers = max(max_peers, len(peers))
            for instance_id in instance_ids:
                self.registry.publish_ip(context.context_id, instance_id)
            yield sim.timeout(CONTROL_RTT_SECONDS + max_peers * HANDLE_OPEN_SECONDS)
            context.ready = True

    def setup_all(self, contexts: Sequence[TransmissionContext]) -> float:
        """Blocking convenience: run set-up, return its simulated duration."""
        sim = self.cluster.sim
        start = sim.now
        process = sim.process(self.setup(contexts), name="context-setup")
        sim.run_until_complete(process)
        return sim.now - start

    def teardown(self, contexts: Sequence[TransmissionContext]) -> None:
        """Reclaim buffers after training completes."""
        for context in contexts:
            for rank in context.participants:
                buffers = self.registry.of(rank)
                for suffix in ("local", "receive", "result"):
                    buffers.release(f"ctx{context.context_id}:{suffix}")
            context.ready = False
            self.contexts.pop(context.context_id, None)
