"""Unit tests for hardware models: links, GPUs, instances, cluster."""

import pytest

from repro.errors import TopologyError
from repro.hardware import (
    Cluster,
    GpuSpec,
    InstanceSpec,
    LinkSpec,
    LinkType,
    NicSpec,
    a100_server,
    gbps,
    GBps,
    make_hetero_cluster,
    make_homo_cluster,
    make_paper_testbed,
    us,
    v100_server,
)
from repro.hardware.presets import A100_GPU, V100_GPU, fragmented_server, make_config
from repro.simulation import Simulator


class TestUnits:
    def test_gbps_converts_bits_to_bytes(self):
        assert gbps(100) == pytest.approx(12.5e9)

    def test_gbps_50(self):
        assert gbps(50) == pytest.approx(6.25e9)

    def test_gbytes(self):
        assert GBps(200) == pytest.approx(200e9)

    def test_us(self):
        assert us(3) == pytest.approx(3e-6)


class TestLinkSpec:
    def test_rejects_nonpositive_bandwidth(self):
        with pytest.raises(TopologyError):
            LinkSpec(LinkType.RDMA, bandwidth=0)

    def test_rejects_negative_latency(self):
        with pytest.raises(TopologyError):
            LinkSpec(LinkType.RDMA, bandwidth=1e9, latency=-1)

    def test_scaled(self):
        spec = LinkSpec(LinkType.TCP, bandwidth=1e9, latency=1e-5, per_stream_cap=2e8)
        half = spec.scaled(0.5)
        assert half.bandwidth == pytest.approx(5e8)
        assert half.latency == spec.latency
        assert half.per_stream_cap == spec.per_stream_cap

    def test_network_types(self):
        assert LinkType.RDMA.is_network
        assert LinkType.TCP.is_network
        assert not LinkType.NVLINK.is_network
        assert not LinkType.PCIE.is_network

    def test_nic_requires_network_link(self):
        with pytest.raises(TopologyError):
            NicSpec("bad", LinkSpec(LinkType.PCIE, bandwidth=1e9))


class TestGpuSpec:
    def test_reduce_kernel_time_includes_overhead(self):
        t = A100_GPU.reduce_kernel_time(120e9)  # one second of payload
        assert t == pytest.approx(1.0 + A100_GPU.kernel_launch_overhead)

    def test_reduce_kernel_time_zero_bytes_is_free(self):
        assert A100_GPU.reduce_kernel_time(0) == 0.0

    def test_reduce_kernel_time_rejects_negative(self):
        with pytest.raises(TopologyError):
            A100_GPU.reduce_kernel_time(-1)

    def test_invalid_spec_rejected(self):
        with pytest.raises(TopologyError):
            GpuSpec(
                "bad", compute_flops=0, reduce_bandwidth=1, kernel_launch_overhead=0,
                memory_bytes=1,
            )


class TestInstanceSpec:
    def test_default_nvlink_pairs_full_clique(self):
        spec = a100_server()
        assert len(spec.resolved_nvlink_pairs()) == 6  # C(4,2)

    def test_no_nvlink_means_no_pairs(self):
        spec = fragmented_server()
        assert spec.resolved_nvlink_pairs() == frozenset()

    def test_explicit_pairs_respected(self):
        spec = a100_server(nvlink_pairs=frozenset({(0, 1), (2, 3)}))
        assert spec.resolved_nvlink_pairs() == frozenset({(0, 1), (2, 3)})

    def test_invalid_pair_rejected(self):
        with pytest.raises(TopologyError):
            a100_server(nvlink_pairs=frozenset({(0, 9)}))

    def test_default_numa_split(self):
        spec = a100_server()
        assert [spec.default_numa(i) for i in range(4)] == [0, 0, 1, 1]


class TestCluster:
    def make(self, specs=None):
        sim = Simulator()
        return sim, Cluster(sim, specs or make_homo_cluster(num_servers=2))

    def test_world_size(self):
        _, cluster = self.make()
        assert cluster.world_size == 8

    def test_ranks_sequential_across_instances(self):
        _, cluster = self.make()
        assert cluster.ranks_on_instance(0) == [0, 1, 2, 3]
        assert cluster.ranks_on_instance(1) == [4, 5, 6, 7]

    def test_gpu_lookup_bounds(self):
        _, cluster = self.make()
        with pytest.raises(TopologyError):
            cluster.gpu(8)

    def test_nvlink_path_is_single_link(self):
        _, cluster = self.make()
        path = cluster.gpu_path(0, 1)
        assert len(path) == 1
        assert "nvlink" in path[0].name

    def test_self_path_is_empty(self):
        _, cluster = self.make()
        assert cluster.gpu_path(3, 3) == []

    def test_cross_instance_path_uses_nics(self):
        _, cluster = self.make()
        path = cluster.gpu_path(0, 4)
        assert "nic-out" in path[0].name
        assert "nic-in" in path[-1].name
        # RDMA NICs carry a duplex-coupling link on each side.
        assert [l.name for l in path[1:-1]] == [
            "nic-duplex:a100#0:mlx0",
            "nic-duplex:a100#1:mlx0",
        ]

    def test_duplex_coupling_limits_bidirectional_sum(self):
        """Two streams per direction saturate a direction alone (12.5 GB/s),
        but concurrent in+out shares the 1.5x duplex budget (9.375 GB/s per
        direction)."""
        sim, cluster = self.make()
        out_path = cluster.gpu_path(0, 4)
        back_path = cluster.gpu_path(4, 0)
        direction_bytes = 9.375e9
        events = []
        for path in (out_path, back_path):
            for _ in range(2):
                events.append(cluster.network.transfer(path, direction_bytes / 2))
        for e in events:
            sim.run_until_complete(e)
        assert sim.now == pytest.approx(1.0, rel=1e-2)

    def test_unidirectional_multistream_reaches_line_rate(self):
        sim, cluster = self.make()
        path = cluster.gpu_path(0, 4)
        events = [cluster.network.transfer(path, 6.25e9) for _ in range(2)]
        for e in events:
            sim.run_until_complete(e)
        # 12.5 GB over the full 12.5 GB/s line rate (duplex unused).
        assert sim.now == pytest.approx(1.0, rel=1e-2)

    def test_pcie_fallback_same_switch_crosses_bus_twice(self):
        sim = Simulator()
        cluster = Cluster(sim, [fragmented_server()])
        path = cluster.gpu_path(0, 1)  # both on switch 0 (numa 0)
        assert len(path) == 2
        assert path[0] is path[1]

    def test_pcie_fallback_cross_switch_uses_two_buses(self):
        sim = Simulator()
        cluster = Cluster(sim, [fragmented_server()])
        path = cluster.gpu_path(0, 3)  # switch 0 -> switch 1
        assert len(path) == 2
        assert path[0] is not path[1]

    def test_hetero_nic_bandwidths(self):
        sim = Simulator()
        cluster = Cluster(sim, make_hetero_cluster())
        assert cluster.nic_egress(0).capacity == pytest.approx(gbps(100))
        assert cluster.nic_egress(2).capacity == pytest.approx(gbps(50))

    def test_tcp_per_stream_cap(self):
        sim = Simulator()
        cluster = Cluster(sim, make_homo_cluster(network="tcp"))
        assert cluster.nic_egress(0).per_stream_cap == pytest.approx(gbps(20))

    def test_rdma_single_stream_cap(self):
        # One QP/proxy channel sustains ~60 Gbps on a 100 Gbps NIC.
        _, cluster = self.make()
        assert cluster.nic_egress(0).per_stream_cap == pytest.approx(gbps(60))

    def test_loopback_latency_prefers_nic_numa(self):
        _, cluster = self.make()
        near = cluster.loopback_latency(0, 0)
        far = cluster.loopback_latency(0, 1)
        assert near < far

    def test_loopback_bad_numa_rejected(self):
        _, cluster = self.make()
        with pytest.raises(TopologyError):
            cluster.loopback_latency(0, 5)

    def test_set_nic_bandwidth_shapes_both_directions(self):
        _, cluster = self.make()
        cluster.set_nic_bandwidth(0, 1e9)
        assert cluster.nic_egress(0).capacity == pytest.approx(1e9)
        assert cluster.nic_ingress(0).capacity == pytest.approx(1e9)

    def test_set_nic_bandwidth_egress_only(self):
        _, cluster = self.make()
        nominal = cluster.nic_ingress(0).capacity
        cluster.set_nic_bandwidth(0, 1e9, direction="egress")
        assert cluster.nic_egress(0).capacity == pytest.approx(1e9)
        assert cluster.nic_ingress(0).capacity == pytest.approx(nominal)

    def test_set_nic_bandwidth_bad_direction(self):
        _, cluster = self.make()
        with pytest.raises(TopologyError):
            cluster.set_nic_bandwidth(0, 1e9, direction="sideways")

    def test_empty_cluster_rejected(self):
        with pytest.raises(TopologyError):
            Cluster(Simulator(), [])

    def test_paper_testbed_composition(self):
        sim = Simulator()
        cluster = Cluster(sim, make_paper_testbed())
        assert cluster.world_size == 24
        assert cluster.instances[0].spec.gpu.name == "A100"
        assert cluster.instances[5].spec.gpu.name == "V100"

    def test_make_config_skips_zero(self):
        specs = make_config([4, 0, 2], [4])
        assert [s.num_gpus for s in specs] == [4, 2, 4]
        assert [s.gpu.name for s in specs] == ["A100", "A100", "V100"]

    def test_transfer_over_gpu_path_end_to_end(self):
        sim, cluster = self.make()
        done = cluster.network.transfer(cluster.gpu_path(0, 4), 7.5e9)
        sim.run_until_complete(done)
        # One stream achieves 60 Gbps (7.5 GB/s) on the 100 Gbps NIC pair.
        assert sim.now == pytest.approx(1.0, rel=1e-3)

    def test_compute_ratio_a100_v100(self):
        assert A100_GPU.compute_flops / V100_GPU.compute_flops == pytest.approx(2.86, rel=0.05)
