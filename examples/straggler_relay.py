"""Adaptive relay control under stragglers and faults (paper Sec. IV-C).

Scenario 1 — mild skew: the ski-rental coordinator decides *waiting* is
cheaper, and one full collective runs.

Scenario 2 — a hard straggler: the coordinator triggers *phase 1* among
the ready workers (the straggler's GPU relays traffic it does not
contribute to), then *phase 2* folds the late tensor in. The final sums
are bit-identical to a full AllReduce.

Scenario 3 — a crashed worker: after T_fault (5x the time since the
fastest worker was ready) the worker is declared faulty, excluded, and the
data loader redistributes shards so the global batch size is unchanged —
no job restart.

Run:  python examples/straggler_relay.py
"""

import numpy as np

from repro import AdapCCSession
from repro.hardware import MB, make_homo_cluster
from repro.training import ShardedDataLoader


def fresh_session():
    session = AdapCCSession(make_homo_cluster(num_servers=2)).init()
    session.setup()
    return session


def tensors_for(session, length=4096):
    rng = np.random.default_rng(7)
    return {
        gpu.rank: rng.integers(0, 9, length).astype(np.float64)
        for gpu in session.cluster.gpus
    }


def main() -> None:
    scale = 64 * MB / (4096 * 8)

    print("== Scenario 1: mild skew -> coordinator waits ==")
    session = fresh_session()
    tensors = tensors_for(session)
    ready = {rank: 0.002 + 0.0003 * rank for rank in tensors}  # 2.0-4.1 ms skew
    result = session.allreduce(tensors, ready_times=ready, byte_scale=scale)
    print(
        f"decision: {'proceed' if result.decision.proceed else 'wait'} "
        f"(waited {result.decision.waited_seconds * 1e3:.1f} ms, "
        f"buy cost {result.decision.buy_cost_seconds * 1e3:.1f} ms)"
    )
    assert np.array_equal(result.outputs[0], sum(tensors.values()))
    print(f"completed in {result.duration * 1e3:.2f} ms, result exact\n")

    print("== Scenario 2: hard straggler -> phase 1 + phase 2 ==")
    session = fresh_session()
    tensors = tensors_for(session)
    ready = {rank: 0.0 for rank in tensors}
    ready[5] = 0.050  # worker 5 is 50 ms late
    result = session.allreduce(tensors, ready_times=ready, byte_scale=scale)
    print(
        f"decision: proceed at t={result.decision.trigger_time * 1e3:.0f} ms, "
        f"relays={result.decision.relays}"
    )
    print(
        f"phase 1 took {result.phase1_seconds * 1e3:.2f} ms among "
        f"{len(result.decision.active_ranks)} ready workers; "
        f"phase 2 took {result.phase2_seconds * 1e3:.2f} ms"
    )
    assert np.array_equal(result.outputs[5], sum(tensors.values()))
    print("two-phase result identical to a full AllReduce")
    print("(a straggler leading a sub-collective would late-join phase 1")
    print(" chunk by chunk; phase 2 then carries only the missed chunks)\n")

    print("== Scenario 3: crashed worker -> fault recovery, no restart ==")
    session = fresh_session()
    tensors = tensors_for(session)
    ready = {rank: 0.0 for rank in tensors}
    ready[3] = None  # never reports
    result = session.allreduce(tensors, ready_times=ready, byte_scale=scale)
    report = result.fault_report
    print(
        f"faulty={report.faulty_ranks} detected after "
        f"T_fault={report.threshold_seconds * 1e3:.1f} ms "
        f"(PyTorch Elastic would need 15 s + restart)"
    )
    survivors = [r for r in tensors if r != 3]
    expected = sum(tensors[r] for r in survivors)
    assert np.array_equal(result.outputs[0], expected)

    loader = ShardedDataLoader(dataset_size=10_000, global_batch=128, workers=list(tensors))
    loader.redistribute(survivors)
    batches = loader.next_batch()
    print(
        f"data loader redistributed: {len(batches)} workers, "
        f"global batch still {sum(batches.values())}"
    )


if __name__ == "__main__":
    main()
