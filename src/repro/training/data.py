"""Sharded data loading with redistribution on faults (Sec. IV-C.2).

After the coordinator excludes faulty workers, it "notifies the data
loader of remaining workers for a redistribution of the training data, to
ensure that the global batch size remains consistent throughout the whole
training process". The loader here owns that invariant: shards always
partition the sample space exactly, and the global batch size never
changes across redistributions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.errors import TrainingError


@dataclass
class ShardedDataLoader:
    """Partitions a dataset over workers and deals per-iteration batches."""

    dataset_size: int
    global_batch: int
    workers: List[int]

    def __post_init__(self) -> None:
        if self.dataset_size < 1:
            raise TrainingError("dataset must be non-empty")
        if self.global_batch < 1:
            raise TrainingError("global batch must be >= 1")
        if not self.workers:
            raise TrainingError("need at least one worker")
        if self.global_batch > self.dataset_size:
            raise TrainingError("global batch exceeds dataset")
        self.workers = sorted(set(self.workers))
        self._cursor = 0
        self._epochs = 0
        self._assign_shards()

    def _assign_shards(self) -> None:
        """Contiguous shards, sizes differing by at most one sample."""
        n = len(self.workers)
        base, extra = divmod(self.dataset_size, n)
        self.shards: Dict[int, Tuple[int, int]] = {}
        start = 0
        for position, worker in enumerate(self.workers):
            size = base + (1 if position < extra else 0)
            self.shards[worker] = (start, start + size)
            start += size

    # -- invariants ------------------------------------------------------------

    def shard_sizes(self) -> Dict[int, int]:
        """Samples held by each worker's shard."""
        return {w: end - start for w, (start, end) in self.shards.items()}

    def verify_partition(self) -> bool:
        """Shards tile [0, dataset_size) exactly with no overlap."""
        intervals = sorted(self.shards.values())
        position = 0
        for start, end in intervals:
            if start != position or end < start:
                return False
            position = end
        return position == self.dataset_size

    # -- iteration ---------------------------------------------------------------

    def local_batch(self, worker: int) -> int:
        """This worker's share of the global batch (≈ equal split)."""
        if worker not in self.shards:
            raise TrainingError(f"worker {worker} has no shard")
        position = self.workers.index(worker)
        base, extra = divmod(self.global_batch, len(self.workers))
        return base + (1 if position < extra else 0)

    def next_batch(self) -> Dict[int, int]:
        """Per-worker sample counts for one iteration.

        The counts always sum to the global batch — the invariant fault
        recovery must preserve.
        """
        batches = {worker: self.local_batch(worker) for worker in self.workers}
        self._cursor += self.global_batch
        if self._cursor >= self.dataset_size:
            self._cursor -= self.dataset_size
            self._epochs += 1
        return batches

    @property
    def epochs_completed(self) -> int:
        """Full passes over the dataset so far."""
        return self._epochs

    # -- fault recovery ---------------------------------------------------------------

    def redistribute(self, survivors: Sequence[int]) -> None:
        """Reassign shards to the surviving workers.

        The global batch size is untouched; each survivor's local batch
        grows so the product of workers × local batch stays constant.
        """
        survivors = sorted(set(survivors))
        if not survivors:
            raise TrainingError("cannot redistribute to zero workers")
        unknown = set(survivors) - set(self.workers)
        if unknown:
            raise TrainingError(f"unknown workers {sorted(unknown)} in redistribution")
        self.workers = survivors
        self._assign_shards()

    def readmit(self, workers: Sequence[int]) -> None:
        """Add workers back (transient-fault rejoin) and reassign shards.

        The inverse of :meth:`redistribute`: a worker that recovered from a
        transient crash re-enters the shard partition, shrinking everyone
        else's share while the global batch size again stays untouched.
        """
        joiners = sorted(set(workers))
        if not joiners:
            raise TrainingError("readmit needs at least one worker")
        self.workers = sorted(set(self.workers) | set(joiners))
        self._assign_shards()
