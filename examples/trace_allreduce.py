"""Trace one adaptive AllReduce and export it for Perfetto.

Runs a single AllReduce on a mixed A100+V100 cluster with telemetry
enabled — one rank straggling so the ski-rental relay decision fires —
then writes both export formats:

* ``allreduce.trace.json`` — Chrome trace-event JSON; open it in
  https://ui.perfetto.dev or ``chrome://tracing`` to see one track per
  link/GPU/subsystem;
* ``allreduce.jsonl`` — the structured run, for
  ``python -m repro.telemetry summarize allreduce.jsonl`` and the
  ``python -m repro.analysis --telemetry`` lint.

Run:  python examples/trace_allreduce.py
"""

import numpy as np

from repro import AdapCCSession
from repro.hardware import MB
from repro.hardware.presets import make_config
from repro.telemetry import write_chrome_trace, write_jsonl


def main() -> None:
    print("== Tracing one adaptive AllReduce (2x2xA100 + 2x2xV100) ==\n")
    session = AdapCCSession(make_config([2, 2], [2, 2]), telemetry=True).init()
    session.setup()

    ranks = [gpu.rank for gpu in session.cluster.gpus]
    length = 1 << 14
    rng = np.random.default_rng(0)
    tensors = {rank: rng.standard_normal(length) for rank in ranks}
    # Rank 3 straggles past the break-even threshold, so the trace shows
    # the coordinator's wait-vs-relay verdict and the two-phase execution.
    ready = {rank: 0.0 for rank in ranks}
    ready[3] = 0.05
    scale = 64 * MB / (length * 8)

    result = session.allreduce(tensors, ready_times=ready, byte_scale=scale)
    print(f"AllReduce took {result.duration:.4f}s simulated")

    telemetry = session.telemetry
    tracer = telemetry.tracer
    print(
        f"collected {len(tracer.spans)} spans and {len(tracer.events)} events "
        f"across {len({s.track for s in tracer.spans})} tracks"
    )
    for event in tracer.events_named("ski-rental-decision"):
        print(
            f"ski-rental verdict: {event.args['verdict']} "
            f"(waited {event.args['waited_seconds']:.4f}s, "
            f"buy cost {event.args['buy_cost_seconds']:.4f}s)"
        )

    write_chrome_trace(telemetry, "allreduce.trace.json")
    write_jsonl(telemetry, "allreduce.jsonl")
    print("\nwrote allreduce.trace.json (open in https://ui.perfetto.dev)")
    print("wrote allreduce.jsonl (python -m repro.telemetry summarize allreduce.jsonl)")


if __name__ == "__main__":
    main()
