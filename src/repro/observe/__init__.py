"""repro.observe: online anomaly detection that closes the telemetry loop.

The packages upstream of this one *record* (telemetry), *measure*
(profiling), and *plan* (synthesis); ``repro.observe`` is the feedback
path between them. A :class:`~repro.observe.watchdog.Watchdog` subscribes
to the live telemetry stream (the hub's streaming-consumer API) and keeps
EWMA + CUSUM detectors over per-link throughput, α–β fit residuals,
ski-rental lateness, and iteration times. Firings become typed
:class:`~repro.observe.verdicts.AnomalyVerdict` records with evidence
windows attached, and drive *targeted* adaptation — re-probe only the
implicated links, re-synthesize only when the refreshed eq.-4 finish time
moves past a hysteresis threshold — replacing blind fixed-period
re-profiling.

Everything advances on the sim clock, so same-seed runs emit
byte-identical verdict logs; ``python -m repro.analysis --observe`` lints
a log's causal chain (verdict → re-probe → re-synthesis), and
:mod:`repro.observe.quality` scores detection against chaos fault plans
as ground truth.
"""

from repro.observe.detectors import CusumDetector, EwmaBaseline, SignalTracker
from repro.observe.quality import (
    DetectionReport,
    LabelMatch,
    cusum_latency_bound,
    evaluate_detection,
)
from repro.observe.verdicts import (
    CONFIG_RECORD,
    REPROBE_RECORD,
    RESYNTHESIS_RECORD,
    VERDICT_RECORD,
    AnomalyKind,
    AnomalyVerdict,
    ObserveLog,
    link_endpoints,
    links_touching,
    parse_observe_jsonl,
)
from repro.observe.watchdog import ObserveConfig, Watchdog

__all__ = [
    "AnomalyKind",
    "AnomalyVerdict",
    "CONFIG_RECORD",
    "CusumDetector",
    "DetectionReport",
    "EwmaBaseline",
    "LabelMatch",
    "ObserveConfig",
    "ObserveLog",
    "REPROBE_RECORD",
    "RESYNTHESIS_RECORD",
    "SignalTracker",
    "VERDICT_RECORD",
    "Watchdog",
    "cusum_latency_bound",
    "evaluate_detection",
    "link_endpoints",
    "links_touching",
    "parse_observe_jsonl",
]
