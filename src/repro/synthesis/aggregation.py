"""Aggregation control (the a_{m,g} decision).

For reduce-family primitives, aggregating at an interior node shrinks the
traffic it forwards (k incoming partitions become one) at the price of a
synchronization ``max`` — the node must wait for its slowest child — and a
kernel launch per chunk (eq. 2). Forwarding raw flows instead (a_{m,g}=0)
avoids the wait but multiplies downstream link load (eq. 3's Reduce rule).

Defaults aggregate at every tree-interior rank; :func:`improve_aggregation`
then greedily flips interior nodes off where the evaluator says raw
forwarding is faster (e.g. a relay with one fast and one slow child on an
uncongested downstream link).
"""

from __future__ import annotations

from typing import Dict

from repro.synthesis.routing import Tree, tree_interior_ranks
from repro.synthesis.strategy import Strategy
from repro.topology.graph import NodeId, gpu_node


def default_aggregation(tree: Tree, root: int) -> Dict[NodeId, bool]:
    """a_{m,g} = 1 at every rank with children (root included)."""
    return {gpu_node(rank): True for rank in tree_interior_ranks(tree, root)}


def improve_aggregation(strategy: Strategy, evaluator) -> Strategy:
    """One greedy pass of aggregation flips, in place.

    For each sub-collective and each aggregating non-root node, try
    disabling aggregation there; keep the flip when the evaluated
    completion time improves. The root always aggregates (it must produce
    the final tensor).
    """
    best = evaluator.objective(strategy)
    for sc in strategy.subcollectives:
        for node in list(sc.aggregation):
            if sc.root is not None and node == sc.root:
                continue
            if not sc.aggregation[node]:
                continue
            sc.aggregation[node] = False
            candidate = evaluator.objective(strategy)
            if candidate < best:
                best = candidate
            else:
                sc.aggregation[node] = True
    strategy.predicted_time = best
    return strategy
