"""Telemetry tests: core lifecycle, metrics, exports, determinism, lint.

The determinism tests are the load-bearing ones: two replays of the same
seeded fault plan under fresh hubs must export *byte-identical* JSONL —
that property is what makes a trace from a failed run reproducible from
nothing but its seed, and it is why the tracer only ever timestamps with
the simulator clock.
"""

import json
import os

import numpy as np
import pytest

from repro.adapcc import AdapCCSession
from repro.analysis.lint_telemetry import (
    lint_chrome_trace,
    lint_telemetry_file,
    lint_telemetry_run,
)
from repro.chaos import (
    DECIDE_PHASE,
    TRANSITION_PHASE,
    ChaosRunner,
    CoordinatorCrashFault,
    FaultPlan,
)
from repro.errors import TelemetryError
from repro.hardware.presets import make_config, make_homo_cluster
from repro.simulation.records import TraceRecorder
from repro.telemetry import (
    MetricsRegistry,
    TelemetryConsumer,
    TelemetryHub,
    Tracer,
    hub,
    parse_jsonl,
    resolve_telemetry,
    set_hub,
    to_chrome_trace,
    to_jsonl,
)
from repro.telemetry.__main__ import main as telemetry_cli
from repro.telemetry.export import summarize_collectives

CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "23"))


@pytest.fixture
def fresh_hub():
    """Install a fresh enabled hub; restore the previous one afterwards."""
    new = TelemetryHub(enabled=True)
    previous = set_hub(new)
    yield new
    set_hub(previous)


@pytest.fixture
def disabled_hub():
    """Install a fresh *disabled* hub; restore the previous one afterwards."""
    new = TelemetryHub(enabled=False)
    previous = set_hub(new)
    yield new
    set_hub(previous)


# -- tracing core ---------------------------------------------------------------


class TestTracer:
    def test_span_lifecycle_and_dotted_ids(self):
        tracer = Tracer()
        root = tracer.begin("outer", 1.0, category="c", track="t")
        child = tracer.begin("inner", 1.5, parent=root)
        assert root.span_id == "1"
        assert child.span_id == "1.1"
        assert child.parent_id == "1"
        tracer.end(child, 2.0)
        tracer.end(root, 3.0)
        assert root.duration == 2.0
        assert tracer.open_spans() == []

    def test_double_close_rejected(self):
        tracer = Tracer()
        span = tracer.begin("s", 0.0)
        tracer.end(span, 1.0)
        with pytest.raises(TelemetryError):
            tracer.end(span, 2.0)

    def test_time_travel_rejected(self):
        tracer = Tracer()
        span = tracer.begin("s", 5.0)
        with pytest.raises(TelemetryError):
            tracer.end(span, 4.0)

    def test_instants_are_closed_at_emission(self):
        tracer = Tracer()
        event = tracer.instant("e", 2.5, category="x", flag=True)
        assert event.end == event.start == 2.5
        assert tracer.events_named("e") == [event]
        assert len(tracer) == 1


class TestHub:
    def test_disabled_hub_records_nothing(self):
        quiet = TelemetryHub(enabled=False)
        assert quiet.begin("s", 0.0) is None
        assert quiet.instant("e", 0.0) is None
        quiet.end(None, 1.0)  # ignoring None is the disabled contract
        assert len(quiet.tracer) == 0

    def test_resolve_telemetry_flips_current_hub(self, disabled_hub):
        assert resolve_telemetry(True) is disabled_hub
        assert disabled_hub.enabled
        resolve_telemetry(False)
        assert not disabled_hub.enabled
        assert resolve_telemetry(None) is disabled_hub  # leaves state alone
        assert not disabled_hub.enabled

    def test_resolve_telemetry_installs_explicit_hub(self, disabled_hub):
        mine = TelemetryHub()
        assert resolve_telemetry(mine) is mine
        assert mine.enabled
        assert hub() is mine
        set_hub(disabled_hub)

    def test_set_hub_rejects_non_hub(self):
        with pytest.raises(TelemetryError):
            set_hub("not a hub")


class _Recording(TelemetryConsumer):
    """Test consumer that logs every delivery, optionally acting mid-dispatch."""

    def __init__(self, name, log, action=None):
        self.name = name
        self.log = log
        self.action = action

    def _deliver(self, record):
        self.log.append((self.name, record.name))
        if self.action is not None:
            action, self.action = self.action, None
            action()

    def on_span(self, span):
        self._deliver(span)

    def on_event(self, event):
        self._deliver(event)


class TestConsumerDispatch:
    """Satellite: (un)subscribing during dispatch must not skip or
    double-deliver records to the other consumers."""

    def test_unsubscribe_during_event_dispatch_does_not_skip_next(self):
        live = TelemetryHub(enabled=True)
        log = []
        first = _Recording("first", log)
        first.action = lambda: live.unsubscribe(first)
        second = _Recording("second", log)
        live.subscribe(first)
        live.subscribe(second)
        live.instant("e1", 0.0)
        # Without snapshotting, first's self-removal shifts the list and
        # second misses e1 entirely.
        assert log == [("first", "e1"), ("second", "e1")]
        live.instant("e2", 1.0)
        assert log == [("first", "e1"), ("second", "e1"), ("second", "e2")]

    def test_unsubscribe_during_span_dispatch_does_not_skip_next(self):
        live = TelemetryHub(enabled=True)
        log = []
        first = _Recording("first", log)
        first.action = lambda: live.unsubscribe(first)
        second = _Recording("second", log)
        live.subscribe(first)
        live.subscribe(second)
        span = live.begin("s1", 0.0)
        live.end(span, 1.0)
        assert log == [("first", "s1"), ("second", "s1")]

    def test_subscribe_during_dispatch_defers_to_the_next_record(self):
        live = TelemetryHub(enabled=True)
        log = []
        late = _Recording("late", log)
        first = _Recording("first", log)
        first.action = lambda: live.subscribe(late)
        live.subscribe(first)
        live.instant("e1", 0.0)
        # The in-flight record predates late's subscription.
        assert log == [("first", "e1")]
        live.instant("e2", 1.0)
        assert log == [("first", "e1"), ("first", "e2"), ("late", "e2")]

    def test_no_double_delivery_when_a_consumer_resubscribes_mid_dispatch(self):
        live = TelemetryHub(enabled=True)
        log = []
        first = _Recording("first", log)

        def churn():
            live.unsubscribe(first)
            live.subscribe(first)

        first.action = churn
        second = _Recording("second", log)
        live.subscribe(first)
        live.subscribe(second)
        live.instant("e1", 0.0)
        assert log == [("first", "e1"), ("second", "e1")]


class TestHubLabels:
    """Satellite: hub labels stamp every exported record, no-op when empty."""

    def test_labels_stamped_on_every_record_and_meta(self):
        labeled = TelemetryHub(enabled=True, labels={"job": "alpha"})
        span = labeled.begin("s", 0.0, category="c", track="t")
        labeled.end(span, 1.0)
        labeled.instant("e", 0.5)
        run = parse_jsonl(to_jsonl(labeled))
        assert run.meta["labels"] == {"job": "alpha"}
        assert run.records, "expected exported records"
        for record in run.records:
            assert record["labels"] == {"job": "alpha"}

    def test_empty_labels_leave_export_byte_identical(self):
        def export(hub_):
            span = hub_.begin("s", 0.0, category="c", track="t")
            hub_.end(span, 1.0)
            return to_jsonl(hub_)

        bare = export(TelemetryHub(enabled=True))
        empty = export(TelemetryHub(enabled=True, labels={}))
        assert bare == empty
        assert '"labels"' not in bare

    def test_same_seed_labeled_exports_byte_identical(self):
        def labeled_export(seed):
            fresh = TelemetryHub(enabled=True, labels={"job": "j0"})
            previous = set_hub(fresh)
            try:
                _run_session(seed=seed)
                return to_jsonl(fresh)
            finally:
                set_hub(previous)

        first = labeled_export(CHAOS_SEED)
        second = labeled_export(CHAOS_SEED)
        assert first == second
        run = parse_jsonl(first)
        assert all(r["labels"] == {"job": "j0"} for r in run.records)


# -- metrics --------------------------------------------------------------------


class TestMetrics:
    def test_counter_labels_and_total(self):
        registry = MetricsRegistry()
        counter = registry.counter("rounds_total")
        counter.inc(outcome="ok")
        counter.inc(2.0, outcome="degraded")
        assert counter.value(outcome="ok") == 1.0
        assert counter.total() == 3.0
        with pytest.raises(TelemetryError):
            counter.inc(-1.0)

    def test_histogram_buckets_fixed_at_creation(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat", buckets=(0.1, 1.0))
        histogram.observe(0.05)
        histogram.observe(0.5)
        histogram.observe(50.0)  # lands in +Inf
        series = registry.snapshot()["lat"]["series"][0]
        assert series["counts"] == [1, 1, 1]
        assert series["count"] == 3
        with pytest.raises(TelemetryError):
            registry.histogram("lat", buckets=(0.5, 5.0))

    def test_histogram_boundary_values_land_in_the_lower_bucket(self):
        # Buckets are upper-inclusive: value <= edge belongs to that bucket.
        registry = MetricsRegistry()
        histogram = registry.histogram("edge", buckets=(1.0, 2.0))
        histogram.observe(1.0)  # exactly the first edge
        histogram.observe(2.0)  # exactly the last edge
        histogram.observe(2.0 + 1e-12)  # just past: +Inf
        histogram.observe(0.0)
        series = registry.snapshot()["edge"]["series"][0]
        assert series["counts"] == [2, 1, 1]
        assert histogram.count() == 4

    def test_kind_conflicts_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TelemetryError):
            registry.gauge("x")

    def test_prometheus_text_is_sorted_and_typed(self):
        registry = MetricsRegistry()
        registry.gauge("zz").set(2.0, rank="1")
        registry.counter("aa", "first").inc()
        text = registry.to_prometheus()
        assert text.index("aa") < text.index("zz")
        assert "# TYPE aa counter" in text
        assert 'zz{rank="1"} 2' in text


# -- exports + lint -------------------------------------------------------------


def _run_session(seed=0):
    session = AdapCCSession(make_config([2, 2], [2, 2]), seed=seed)
    session.init()
    session.setup()
    tensors = {rank: np.full(128, float(rank + 1)) for rank in range(4)}
    session.allreduce(tensors, ready_times={0: 0.0, 1: 0.0, 2: 0.0, 3: 0.4})
    return session


class TestExport:
    def test_jsonl_roundtrip_and_lint_clean(self, fresh_hub):
        _run_session()
        text = to_jsonl(fresh_hub)
        run = parse_jsonl(text)
        assert run.meta["spans"] == len(fresh_hub.tracer.spans)
        assert run.meta["events"] == len(fresh_hub.tracer.events)
        assert lint_telemetry_run(run) == []

    def test_chrome_trace_lints_clean(self, fresh_hub):
        _run_session()
        payload = to_chrome_trace(fresh_hub)
        assert lint_chrome_trace(payload) == []
        phases = {event["ph"] for event in payload["traceEvents"]}
        assert "X" in phases and "M" in phases

    def test_chrome_trace_has_paired_flow_arrows(self, fresh_hub):
        _run_session()
        payload = to_chrome_trace(fresh_hub)
        flows = [e for e in payload["traceEvents"] if e["ph"] in ("s", "f")]
        assert flows, "cross-rank chunk handoffs must emit flow events"
        by_id = {}
        for event in flows:
            assert event["name"] == "chunk-handoff" and event["cat"] == "flow"
            by_id.setdefault(event["id"], []).append(event)
        for pair in by_id.values():
            phases = sorted(event["ph"] for event in pair)
            assert phases == ["f", "s"]
            start = next(e for e in pair if e["ph"] == "s")
            finish = next(e for e in pair if e["ph"] == "f")
            assert finish["ts"] >= start["ts"]
            assert finish["bp"] == "e"

    def test_chrome_conversion_is_byte_stable(self, fresh_hub):
        _run_session()
        first = json.dumps(to_chrome_trace(fresh_hub), sort_keys=True)
        second = json.dumps(to_chrome_trace(fresh_hub), sort_keys=True)
        assert first == second

    def test_every_layer_emits(self, fresh_hub):
        _run_session()
        categories = {span.category for span in fresh_hub.tracer.spans}
        assert {"collective", "chunk", "reduce", "net", "detect", "profile"} <= categories
        names = {event.name for event in fresh_hub.tracer.events}
        assert "synthesis-decision" in names
        assert "ski-rental-decision" in names
        assert "alpha-beta-fit" in names

    def test_no_open_spans_after_run(self, fresh_hub):
        _run_session()
        assert fresh_hub.tracer.open_spans() == []

    def test_summarize_collectives(self, fresh_hub):
        _run_session()
        rows = summarize_collectives(parse_jsonl(to_jsonl(fresh_hub)))
        assert any(row["name"] == "allreduce" for row in rows)

    def test_lint_flags_corruption(self, fresh_hub):
        _run_session()
        run = parse_jsonl(to_jsonl(fresh_hub))
        run.records[1]["end"] = run.records[1]["start"] - 1.0
        checks = {v.check for v in lint_telemetry_run(run)}
        assert "telemetry-clock" in checks

    def test_lint_chrome_flags_bad_phase(self):
        payload = {"traceEvents": [{"ph": "Q", "pid": 1, "tid": 1, "name": "x", "ts": 0}]}
        assert any(v.check == "chrome-schema" for v in lint_chrome_trace(payload))


# -- determinism ----------------------------------------------------------------


def _chaos_export(seed):
    """One instrumented chaos replay under a fresh hub; returns its JSONL."""
    specs = make_homo_cluster(num_servers=2, gpus_per_server=4)
    plan = FaultPlan.generate(
        seed=seed,
        world=8,
        iterations=3,
        straggler_rate=0.4,
        crash_rate=0.3,
        link_fault_rate=0.6,
        num_instances=2,
    )
    fresh = TelemetryHub(enabled=True)
    previous = set_hub(fresh)
    try:
        ChaosRunner(specs, plan, length=256).run()
        return to_jsonl(fresh)
    finally:
        set_hub(previous)


def _recovery_export(seed):
    """One instrumented coordinator-crash replay; returns its JSONL."""
    specs = make_homo_cluster(num_servers=2, gpus_per_server=4)
    plan = FaultPlan(
        seed=seed,
        iterations=4,
        coordinator_crashes=(
            CoordinatorCrashFault(1, DECIDE_PHASE),
            CoordinatorCrashFault(2, TRANSITION_PHASE),
        ),
    )
    fresh = TelemetryHub(enabled=True)
    previous = set_hub(fresh)
    try:
        ChaosRunner(specs, plan, length=256).run()
        return to_jsonl(fresh), fresh
    finally:
        set_hub(previous)


class TestRecoveryMetricsGroup:
    """Satellite: the ``recovery`` metrics group flows through the
    existing exporters like every other group."""

    EXPECTED = (
        "recovery_elections_total",
        "recovery_fenced_messages_total",
        "recovery_replayed_records_total",
        "recovery_rollbacks_total",
        "recovery_transitions_total",
    )

    def test_registered_after_a_coordinator_crash_run(self):
        _jsonl, exported_hub = _recovery_export(CHAOS_SEED)
        names = exported_hub.metrics.names()
        for name in self.EXPECTED:
            assert name in names
        elections = exported_hub.metrics.get("recovery_elections_total")
        assert elections.total() == 2.0

    def test_snapshot_and_prometheus_exposition(self):
        jsonl, exported_hub = _recovery_export(CHAOS_SEED)
        run = parse_jsonl(jsonl)
        for name in self.EXPECTED:
            assert name in run.metrics
        text = exported_hub.metrics.to_prometheus()
        for name in self.EXPECTED:
            assert f"# TYPE {name} counter" in text
        assert 'recovery_rollbacks_total{reason="coordinator-crash"}' in text

    def test_recovery_instants_land_in_the_trace(self):
        jsonl, _exported_hub = _recovery_export(CHAOS_SEED)
        run = parse_jsonl(jsonl)
        names = {
            record.get("name")
            for record in run.records
            if record.get("cat") == "recovery"
        }
        for expected in (
            "coordinator-crash",
            "epoch-fenced",
            "strategy-prepare",
            "strategy-commit",
            "strategy-rollback",
        ):
            assert expected in names
        assert lint_telemetry_run(run) == []


class TestDeterminism:
    def test_same_seed_exports_byte_identical_jsonl(self):
        first = _chaos_export(CHAOS_SEED)
        second = _chaos_export(CHAOS_SEED)
        assert first == second
        assert lint_telemetry_run(parse_jsonl(first)) == []

    def test_same_seed_recovery_run_exports_byte_identical_jsonl(self):
        first, _ = _recovery_export(CHAOS_SEED)
        second, _ = _recovery_export(CHAOS_SEED)
        assert first == second

    def test_disabled_hub_allocates_no_spans_on_hot_path(self, disabled_hub):
        _run_session()
        assert len(disabled_hub.tracer) == 0
        assert disabled_hub.metrics.names() == []

    def test_event_batching_keeps_exports_byte_identical(self):
        # Satellite invariant: flipping the engine's same-instant batching
        # must not move a single recorded timestamp.
        exports = []
        for batch in (True, False):
            fresh = TelemetryHub(enabled=True)
            previous = set_hub(fresh)
            try:
                session = AdapCCSession(make_config([2, 2], [2, 2]), seed=0)
                session.sim.batch_events = batch
                session.init()
                session.setup()
                tensors = {rank: np.full(128, float(rank + 1)) for rank in range(4)}
                session.allreduce(
                    tensors, ready_times={0: 0.0, 1: 0.0, 2: 0.0, 3: 0.4}
                )
            finally:
                set_hub(previous)
            exports.append(to_jsonl(fresh))
        assert exports[0] == exports[1]


# -- network recorder unification ------------------------------------------------


class TestRecorderAttachment:
    def test_attach_is_idempotent_and_detach_removes(self, disabled_hub):
        session = _run_session()
        network = session.cluster.network
        recorder = TraceRecorder()
        network.attach_recorder(recorder)
        network.attach_recorder(recorder)
        assert network._recorders.count(recorder) == 1
        network.detach_recorder(recorder)
        assert recorder not in network._recorders
        network.detach_recorder(recorder)  # missing is a no-op

    def test_recorder_property_skips_telemetry_bridge(self, fresh_hub):
        session = AdapCCSession(make_config([2, 2]))
        network = session.cluster.network
        # The enabled hub auto-attached its bridge, yet the compatibility
        # view must show only what lint code assigns.
        assert network.recorder is None
        mine = TraceRecorder()
        network.recorder = mine
        assert network.recorder is mine
        bridges = [r for r in network._recorders if not getattr(r, "wants_rates", True)]
        assert bridges, "telemetry bridge must survive recorder assignment"
        network.recorder = None
        assert network.recorder is None
        assert bridges[0] in network._recorders


# -- bench payloads --------------------------------------------------------------


class TestBenchPayload:
    def test_measurement_writes_bench_json(self, tmp_path, monkeypatch, fresh_hub):
        from repro.bench import measure_algorithm_bandwidth
        from repro.synthesis.strategy import Primitive

        monkeypatch.setenv("REPRO_BENCH_DIR", str(tmp_path))
        measure_algorithm_bandwidth(
            make_config([2, 2]), "adapcc", Primitive.ALLREDUCE, 1 << 20
        )
        files = sorted(tmp_path.glob("BENCH_*.json"))
        assert len(files) == 1
        payload = json.loads(files[0].read_text())
        assert payload["kind"] == "algorithm_bandwidth"
        assert payload["algorithm_bps"] > 0
        assert payload["busiest_link"]["bytes_carried"] > 0
        assert "chunks_sent_total" in payload["metrics"]

    def test_no_payload_without_env(self, tmp_path, monkeypatch):
        from repro.bench import write_bench_payload

        monkeypatch.delenv("REPRO_BENCH_DIR", raising=False)
        assert write_bench_payload("x", {"a": 1}) is None
        assert list(tmp_path.glob("BENCH_*.json")) == []


# -- CLI -------------------------------------------------------------------------


class TestCLI:
    def test_summarize_and_chrome(self, tmp_path, fresh_hub, capsys):
        _run_session()
        run_path = tmp_path / "run.jsonl"
        run_path.write_text(to_jsonl(fresh_hub), encoding="utf-8")
        assert telemetry_cli(["summarize", str(run_path)]) == 0
        out = capsys.readouterr().out
        assert "allreduce" in out
        assert "ski-rental" in out
        trace_path = tmp_path / "run.trace.json"
        assert telemetry_cli(["chrome", str(run_path), "-o", str(trace_path)]) == 0
        payload = json.loads(trace_path.read_text())
        assert lint_chrome_trace(payload) == []
        assert lint_telemetry_file(str(run_path)) == []
        assert lint_telemetry_file(str(trace_path)) == []

    def test_summarize_top_appends_slowest_spans(self, tmp_path, fresh_hub, capsys):
        _run_session()
        run_path = tmp_path / "run.jsonl"
        run_path.write_text(to_jsonl(fresh_hub), encoding="utf-8")
        assert telemetry_cli(["summarize", str(run_path), "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "Slowest spans per kind (top 3)" in out
        assert telemetry_cli(["summarize", str(run_path)]) == 0
        assert "Slowest spans" not in capsys.readouterr().out

    def test_summarize_missing_file_fails(self, tmp_path):
        assert telemetry_cli(["summarize", str(tmp_path / "absent.jsonl")]) == 1
