"""Tests for the strategy ASCII renderer."""

import pytest

from repro.bench.visualize import render_strategy, render_subcollective
from repro.hardware import Cluster, MB, make_hetero_cluster
from repro.simulation import Simulator
from repro.synthesis import Primitive, Synthesizer
from repro.topology import LogicalTopology


@pytest.fixture(scope="module")
def setup():
    sim = Simulator()
    cluster = Cluster(sim, make_hetero_cluster())
    topo = LogicalTopology.from_cluster(cluster)
    return topo, Synthesizer(topo)


def test_render_allreduce_strategy(setup):
    topo, synth = setup
    strategy = synth.synthesize(Primitive.ALLREDUCE, 64 * MB, range(16))
    text = render_strategy(strategy, topo)
    assert "allreduce strategy" in text
    assert "M=4" in text
    for sc in strategy.subcollectives:
        assert f"g{sc.root.index}[" in text
    # Aggregating root is marked with '+'.
    assert "[+]" in text
    # Link-class annotations appear.
    assert "~net~" in text or "-nvl-" in text


def test_render_alltoall_lists_flows(setup):
    topo, synth = setup
    strategy = synth.synthesize(Primitive.ALLTOALL, 16 * MB, range(16))
    text = render_strategy(strategy, topo)
    assert "direct flows" in text
    assert "more" in text  # 240 flows are elided past the first 8


def test_render_without_topology(setup):
    _, synth = setup
    strategy = synth.synthesize(Primitive.REDUCE, 8 * MB, range(16), root=0)
    text = render_strategy(strategy)  # labels omitted, no crash
    assert "g0[+]" in text


def test_every_participant_appears(setup):
    topo, synth = setup
    strategy = synth.synthesize(Primitive.REDUCE, 8 * MB, range(16), root=3)
    text = render_subcollective(strategy.subcollectives[0], topo)
    for rank in range(16):
        assert f"g{rank}[" in text
