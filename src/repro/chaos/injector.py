"""Schedule-driven fault injection against a simulated cluster.

The :class:`ChaosInjector` turns one :class:`~repro.chaos.plan.FaultPlan`
into concrete side effects:

* **ready-time faults** — :meth:`ready_delays` resolves the plan into the
  per-rank delay map the relay coordinator consumes (stragglers get their
  scheduled delay, down workers get ``None``);
* **link faults** — :meth:`start` spawns one finite simulated process per
  :class:`~repro.chaos.plan.LinkFault` that rewrites the instance's NIC
  capacity through :meth:`repro.hardware.cluster.Cluster.set_nic_bandwidth`
  (the fluid network re-solves max-min rates at each change) and always
  restores nominal bandwidth at the end of the window;
* **message faults** — :meth:`attach_queues` installs a
  :attr:`~repro.runtime.queues.WorkQueues.fault_filter` that drops or
  duplicates chosen submissions at the Work Queue boundary, which is what
  exercises :class:`~repro.runtime.service.CollectiveService`'s
  timeout/retry and duplicate-suppression paths.

Every applied fault is appended to :attr:`trace` as a plain tuple
``(sim_time, kind, *details)`` — the deterministic event trace the
conformance suite compares across same-seed replays — and mirrored into an
optional :class:`~repro.simulation.records.TraceRecorder` (kinds
``chaos-straggler``/``chaos-crash``/``chaos-link``/``chaos-msg``) so
:func:`repro.analysis.lint_chaos.lint_chaos` can cross-check chaos runs
against the fluid-trace invariants.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.chaos.plan import DROP, FaultPlan, LinkFault
from repro.errors import ChaosError
from repro.hardware.cluster import Cluster
from repro.runtime.queues import WorkItem, WorkQueues
from repro.simulation.records import TraceRecorder
from repro.telemetry.core import hub as telemetry_hub


class ChaosInjector:
    """Applies one fault plan to one cluster; all effects are replayable."""

    def __init__(
        self,
        cluster: Cluster,
        plan: FaultPlan,
        recorder: Optional[TraceRecorder] = None,
    ):
        self.cluster = cluster
        self.sim = cluster.sim
        self.plan = plan
        self.recorder = recorder
        #: Deterministic event trace: (sim_time, kind, *details) tuples in
        #: application order. Two same-seed runs produce identical traces.
        self.trace: List[Tuple] = []
        self._started = False
        for fault in plan.link_faults:
            if fault.instance_id >= len(cluster.instances):
                raise ChaosError(
                    f"link fault targets instance {fault.instance_id}, "
                    f"cluster has {len(cluster.instances)}"
                )

    # -- recording -------------------------------------------------------------

    def record(self, kind: str, subject: str, *details, **payload) -> None:
        """Append one chaos event to the deterministic trace (and mirror it
        into the attached recorder and the telemetry hub, if any)."""
        self.trace.append((self.sim.now, kind, subject, *details))
        if self.recorder is not None:
            self.recorder.record(self.sim.now, kind, subject, **payload)
        telemetry = telemetry_hub()
        if telemetry.enabled:
            telemetry.instant(
                kind, self.sim.now, category="chaos", track="chaos",
                subject=subject, **payload,
            )
            telemetry.metrics.counter(
                "chaos_events_total", "fault activations injected"
            ).inc(kind=kind)

    # -- ready-time faults -----------------------------------------------------

    def ready_delays(
        self, iteration: int, participants: Sequence[int]
    ) -> Dict[int, Optional[float]]:
        """The plan's delay map for one iteration, with trace entries for
        every straggler and down worker."""
        delays = self.plan.ready_delays(iteration, participants)
        for rank in sorted(delays):
            delay = delays[rank]
            if delay is None:
                self.record(
                    "chaos-crash", f"rank{rank}", iteration, rank,
                    iteration=iteration, rank=rank,
                )
            elif delay > 0:
                self.record(
                    "chaos-straggler", f"rank{rank}", iteration, rank, delay,
                    iteration=iteration, rank=rank, delay_seconds=delay,
                )
        return delays

    # -- link faults -----------------------------------------------------------

    def start(self) -> None:
        """Spawn the (finite) link-fault processes; idempotent."""
        if self._started:
            return
        self._started = True
        for fault in self.plan.link_faults:
            self.sim.process(
                self._link_process(fault), name=f"chaos-link:i{fault.instance_id}"
            )

    def _link_process(self, fault: LinkFault):
        sim = self.sim
        nominal = self.cluster.nominal_nic_bandwidth(fault.instance_id)
        degraded = nominal * fault.bandwidth_fraction
        if fault.start_seconds > sim.now:
            yield sim.timeout(fault.start_seconds - sim.now)
        segment = fault.duration_seconds / fault.flaps
        for cycle in range(fault.flaps):
            self.cluster.set_nic_bandwidth(fault.instance_id, degraded)
            self.record(
                "chaos-link", f"instance{fault.instance_id}",
                fault.instance_id, fault.bandwidth_fraction,
                instance=fault.instance_id,
                bandwidth_fraction=fault.bandwidth_fraction,
            )
            if fault.flaps == 1:
                yield sim.timeout(segment)
            else:
                # A flapping link alternates degraded/restored half-cycles.
                yield sim.timeout(segment / 2)
                if cycle < fault.flaps - 1:
                    self.cluster.set_nic_bandwidth(fault.instance_id, nominal)
                    self.record(
                        "chaos-link", f"instance{fault.instance_id}",
                        fault.instance_id, 1.0,
                        instance=fault.instance_id, bandwidth_fraction=1.0,
                    )
                    yield sim.timeout(segment / 2)
        self.cluster.set_nic_bandwidth(fault.instance_id, nominal)
        self.record(
            "chaos-link", f"instance{fault.instance_id}",
            fault.instance_id, 1.0,
            instance=fault.instance_id, bandwidth_fraction=1.0,
        )

    # -- message faults --------------------------------------------------------

    def attach_queues(self, queues: Dict[int, WorkQueues]) -> None:
        """Install drop/duplicate filters on the ranks the plan targets."""
        for rank, queue in queues.items():
            actions = self.plan.message_actions(rank)
            if actions:
                queue.fault_filter = self._make_filter(rank, actions)

    def _make_filter(self, rank: int, actions: Dict[int, str]):
        counter = {"n": 0}

        def fault_filter(item: WorkItem) -> List[WorkItem]:
            index = counter["n"]
            counter["n"] += 1
            action = actions.get(index)
            if action is None:
                return [item]
            self.record(
                "chaos-msg", f"rank{rank}", rank, index, action,
                rank=rank, submission_index=index, action=action,
            )
            if action == DROP:
                return []
            return [item, item]

        return fault_filter
