"""Exception hierarchy for the AdapCC reproduction.

All library-specific errors derive from :class:`ReproError` so callers can
catch a single base class. Subsystems raise the most specific subclass that
describes the failure.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SimulationError(ReproError):
    """Errors raised by the discrete-event simulation engine."""


class ProcessInterrupt(ReproError):
    """Raised inside a simulated process when another process interrupts it.

    The ``cause`` attribute carries the value passed to
    :meth:`repro.simulation.engine.Process.interrupt`.
    """

    def __init__(self, cause: object = None):
        super().__init__(cause)
        self.cause = cause


class TopologyError(ReproError):
    """Invalid or inconsistent hardware/logical topology."""


class ProfilingError(ReproError):
    """Profiling could not produce usable link estimates."""


class SynthesisError(ReproError):
    """The synthesizer could not produce a feasible strategy."""


class StrategyFormatError(SynthesisError):
    """A serialized strategy document could not be parsed."""


class VerificationError(ReproError):
    """A static analysis pass found invariant violations.

    The ``violations`` attribute carries the structured findings (a list of
    :class:`repro.analysis.verify_strategy.Violation`).
    """

    def __init__(self, message: str = "", violations: object = None):
        super().__init__(message)
        self.violations = list(violations or [])


class StrategyVerificationError(VerificationError, SynthesisError):
    """A synthesized strategy failed static verification.

    Also a :class:`SynthesisError` so existing callers that treat a bad
    strategy as a synthesis failure keep working unchanged.
    """


class CommunicatorError(ReproError):
    """Errors in the runtime communicator (contexts, buffers, executors)."""


class BufferError_(CommunicatorError):
    """Buffer misuse: overflow, double registration, or missing IPC handle."""


class RetryBudgetExhausted(CommunicatorError):
    """A collective service round ran out of retries.

    Raised (instead of silently degrading) when the service is configured
    with ``fail_on_exhausted=True`` and a round still has missing ranks
    after ``max_retries`` re-arms of the capped exponential backoff.
    """

    def __init__(self, sequence: int, attempts: int, missing: object = None):
        self.sequence = sequence
        self.attempts = attempts
        self.missing = sorted(missing or [])
        super().__init__(
            f"collective round {sequence} exhausted its retry budget "
            f"({attempts} attempts; missing ranks {self.missing})"
        )


class CoordinationError(ReproError):
    """Relay-control coordination failures."""


class WorkerFault(ReproError):
    """A worker has been declared faulty by the coordinator."""

    def __init__(self, rank: int, message: str = ""):
        super().__init__(message or f"worker rank {rank} is faulty")
        self.rank = rank


class TrainingError(ReproError):
    """Errors raised by the training substrate."""


class ChaosError(ReproError):
    """Malformed fault plans or impossible injection requests."""


class RecoveryError(ReproError):
    """Control-plane recovery failures: lease misuse, journal corruption,
    or an impossible election (no live worker left to take over)."""


class TelemetryError(ReproError):
    """Telemetry misuse: bad metric definitions, span lifecycle errors,
    or malformed trace files."""


class ObserveError(ReproError):
    """Observe-watchdog misuse: invalid detector parameters, a watchdog
    attached without an enabled telemetry stream, or malformed verdict
    logs."""


class FleetError(ReproError):
    """Fleet-replay misuse: malformed workload traces (overlapping rank
    sets, unsorted op schedules, unknown collective kinds), ranks outside
    the cluster, or a replay that deadlocks on the shared fabric."""
