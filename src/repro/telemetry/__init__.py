"""repro.telemetry — structured observability for the AdapCC stack.

Three pieces (see DESIGN.md §7):

* a zero-dependency tracing core — :class:`Span`/:class:`Tracer` with
  explicit (simulator or wall) timestamps, hierarchical span ids, and a
  process-wide :class:`TelemetryHub` that is a no-op unless enabled
  (``REPRO_TELEMETRY=1`` or ``AdapCCSession(telemetry=True)``);
* a metrics registry — :class:`Counter`, :class:`Gauge`, and
  :class:`Histogram` with fixed bucket edges, exportable as Prometheus
  text or JSON;
* exporters — JSONL run files and Chrome trace-event JSON (loadable in
  Perfetto / ``chrome://tracing``), plus a CLI::

      python -m repro.telemetry summarize run.jsonl
      python -m repro.telemetry chrome run.jsonl -o run.trace.json

Instrumentation is threaded through every layer (detector, profiler,
synthesizer, chunk pipeline, relay coordinator, collective service, chaos
injector); ``python -m repro.analysis --telemetry`` lints exported traces.
"""

from repro.telemetry.bridge import TelemetryRecorder, network_recorder
from repro.telemetry.core import (
    ENV_TELEMETRY,
    Span,
    TelemetryConsumer,
    TelemetryHub,
    Tracer,
    hub,
    resolve_telemetry,
    set_hub,
    telemetry_enabled,
)
from repro.telemetry.export import (
    SCHEMA_VERSION,
    TelemetryRun,
    parse_jsonl,
    read_jsonl,
    to_chrome_trace,
    to_jsonl,
    write_chrome_trace,
    write_jsonl,
)
from repro.telemetry.metrics import (
    DEFAULT_TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)

__all__ = [
    "ENV_TELEMETRY",
    "SCHEMA_VERSION",
    "DEFAULT_TIME_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "TelemetryConsumer",
    "TelemetryHub",
    "TelemetryRecorder",
    "TelemetryRun",
    "Tracer",
    "hub",
    "network_recorder",
    "parse_jsonl",
    "read_jsonl",
    "resolve_telemetry",
    "set_hub",
    "telemetry_enabled",
    "to_chrome_trace",
    "to_jsonl",
    "write_chrome_trace",
    "write_jsonl",
]
