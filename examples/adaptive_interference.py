"""Closed-loop observability: interference detected, probed, re-planned.

The canonical observe-watchdog scenario. A 2x4xA100 training job iterates
an adaptive AllReduce while an *external* workload starts contending for
server 0's NIC mid-training (a seeded chaos
:meth:`~repro.chaos.plan.FaultPlan.interference` link fault — the job is
never told). The :class:`~repro.observe.watchdog.Watchdog`, subscribed to
the live telemetry stream, watches per-link throughput and iteration
times; when its CUSUM detectors flag the sustained shift it

1. raises a typed interference-onset verdict with the evidence window
   attached,
2. re-probes *only* the implicated links (not the whole topology),
3. re-evaluates the stale strategy's eq.-4 finish time under the
   refreshed costs, and — since the degradation moved it well past the
   hysteresis band — re-synthesizes through the two-phase transition
   machinery.

Every step lands in the observe log, exported to
``adaptive_interference.jsonl`` and lintable with
``python -m repro.analysis --observe adaptive_interference.jsonl``.

Run:  python examples/adaptive_interference.py
"""

from repro.chaos import ChaosRunner, FaultPlan
from repro.hardware import make_homo_cluster
from repro.observe import ObserveConfig, evaluate_detection
from repro.telemetry import TelemetryHub, set_hub

SEED = 11


def main() -> None:
    print("== Mid-training NIC interference, watchdog-adapted ==\n")
    specs = make_homo_cluster(num_servers=2, gpus_per_server=4)
    plan = FaultPlan.interference(seed=SEED, iterations=24)
    fault = plan.link_faults[0]
    print(
        f"hidden fault: server {fault.instance_id}'s NIC squeezed to "
        f"{fault.bandwidth_fraction:.0%} of nominal at t={fault.start_seconds}s\n"
    )

    set_hub(TelemetryHub(enabled=True))  # the watchdog consumes this stream
    runner = ChaosRunner(
        specs, plan, length=512, byte_scale=200_000.0, observe=ObserveConfig()
    )
    report = runner.run()
    watchdog = runner.watchdog

    for verdict in watchdog.log.verdicts:
        print(
            f"iteration {verdict['iteration']}: {verdict['kind']} "
            f"({verdict['direction']}, statistic {verdict['statistic']:.2f}) "
            f"implicating {verdict['implicated_links']}"
        )
    for reprobe in watchdog.log.reprobes:
        print(
            f"targeted re-probe {reprobe['id']}: probed only "
            f"{reprobe['probed_links']} "
            f"({reprobe['end'] - reprobe['start']:.4f}s of simulated probing)"
        )
    for resynthesis in watchdog.log.resyntheses:
        print(
            f"re-synthesis {resynthesis['id']}: stale finish "
            f"{resynthesis['stale_finish'] * 1e3:.2f}ms -> refreshed "
            f"{resynthesis['refreshed_finish'] * 1e3:.2f}ms -> new plan "
            f"{resynthesis['new_finish'] * 1e3:.2f}ms"
        )

    quality = evaluate_detection(watchdog.log.verdicts, plan.ground_truth())
    print(
        f"\ndetection vs ground truth: recall {quality.recall:.2f}, "
        f"precision {quality.precision:.2f}, "
        f"latency {quality.worst_latency_seconds:.2f}s after onset"
    )
    print(f"every iteration bitwise exact: {report.all_exact}")

    path = "adaptive_interference.jsonl"
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(watchdog.log.to_jsonl())
    print(f"\nobserve log -> {path}")
    print(f"lint it:  python -m repro.analysis --observe {path}")


if __name__ == "__main__":
    main()
