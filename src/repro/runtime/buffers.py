"""GPU memory buffers and IPC handle bookkeeping (Sec. V-A).

Each transmission context registers three buffers per GPU process —
*local* (data to communicate), *receive* (landing area for predecessors'
chunks) and *result* (communicated data handed back to the framework) —
and exposes the receive buffer to same-instance peers through a simulated
CUDA-IPC handle table. Registration is paid once in the set-up phase and
reused across iterations, which is the optimization the paper calls out
("making it possible to perform CUDA IPC once at the beginning").
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Tuple

from repro.errors import BufferError_
from repro.hardware.cluster import Cluster


@dataclass(frozen=True)
class IpcHandle:
    """An opaque handle exposing one GPU buffer to same-instance peers."""

    owner_rank: int
    buffer_name: str
    token: int


class GpuBuffers:
    """The three per-context buffers of one GPU process."""

    _tokens = itertools.count(1)

    def __init__(self, rank: int, capacity_bytes: float):
        if capacity_bytes <= 0:
            raise BufferError_("buffer capacity must be positive")
        self.rank = rank
        self.capacity_bytes = capacity_bytes
        self._sizes: Dict[str, float] = {}
        self._handles: Dict[str, IpcHandle] = {}

    @property
    def registered_bytes(self) -> float:
        """Total bytes currently registered on this GPU."""
        return sum(self._sizes.values())

    def register(self, name: str, nbytes: float) -> None:
        """Allocate one named buffer; rejects duplicates and over-commit."""
        if name in self._sizes:
            raise BufferError_(f"rank {self.rank}: buffer {name!r} already registered")
        if nbytes <= 0:
            raise BufferError_(f"rank {self.rank}: buffer {name!r} size must be positive")
        if self.registered_bytes + nbytes > self.capacity_bytes:
            raise BufferError_(
                f"rank {self.rank}: registering {name!r} ({nbytes:.3g} B) exceeds "
                f"GPU memory ({self.capacity_bytes:.3g} B)"
            )
        self._sizes[name] = nbytes

    def size_of(self, name: str) -> float:
        """Size of a registered buffer; raises if unknown."""
        try:
            return self._sizes[name]
        except KeyError:
            raise BufferError_(f"rank {self.rank}: no buffer {name!r}")

    def export_handle(self, name: str) -> IpcHandle:
        """Create (or return) the IPC handle for a registered buffer."""
        self.size_of(name)
        if name not in self._handles:
            self._handles[name] = IpcHandle(self.rank, name, next(GpuBuffers._tokens))
        return self._handles[name]

    def release(self, name: str) -> None:
        """Reclaim one buffer; missing names are ignored (idempotent)."""
        self._sizes.pop(name, None)
        self._handles.pop(name, None)

    def release_all(self) -> None:
        """Reclaim everything (training finished)."""
        self._sizes.clear()
        self._handles.clear()


class BufferRegistry:
    """Cluster-wide registry: per-rank buffers plus the IPC pointer table.

    The pointer table maps (context, owner rank) → handle, scoped to one
    instance — CUDA IPC only works within a server; cross-server peers
    exchange host IPs instead (modelled as the ``ip_table``).
    """

    def __init__(self, cluster: Cluster):
        self.cluster = cluster
        self.buffers: Dict[int, GpuBuffers] = {
            gpu.rank: GpuBuffers(gpu.rank, gpu.spec.memory_bytes) for gpu in cluster.gpus
        }
        #: (instance_id, context_id) -> {owner_rank: IpcHandle}
        self.pointer_table: Dict[Tuple[int, int], Dict[int, IpcHandle]] = {}
        #: context_id -> {instance_id: "10.0.0.<id>"} for cross-server peers.
        self.ip_table: Dict[int, Dict[int, str]] = {}

    def of(self, rank: int) -> GpuBuffers:
        """The buffer set of one rank."""
        try:
            return self.buffers[rank]
        except KeyError:
            raise BufferError_(f"unknown rank {rank}")

    def publish_handle(self, context_id: int, rank: int, buffer_name: str) -> IpcHandle:
        """Export a buffer's handle into the instance-local pointer table."""
        instance_id = self.cluster.gpu(rank).instance_id
        handle = self.of(rank).export_handle(buffer_name)
        self.pointer_table.setdefault((instance_id, context_id), {})[rank] = handle
        return handle

    def lookup_handle(self, context_id: int, accessor_rank: int, owner_rank: int) -> IpcHandle:
        """Resolve a peer's receive buffer; same-instance only (CUDA IPC)."""
        accessor = self.cluster.gpu(accessor_rank)
        owner = self.cluster.gpu(owner_rank)
        if accessor.instance_id != owner.instance_id:
            raise BufferError_(
                f"CUDA IPC cannot cross instances (ranks {accessor_rank}, {owner_rank}); "
                "use the IP table"
            )
        table = self.pointer_table.get((owner.instance_id, context_id), {})
        if owner_rank not in table:
            raise BufferError_(
                f"rank {owner_rank} has not published a handle for context {context_id}"
            )
        return table[owner_rank]

    def publish_ip(self, context_id: int, instance_id: int) -> str:
        """Record an instance's host IP for cross-server transmissions."""
        ip = f"10.0.0.{instance_id + 1}"
        self.ip_table.setdefault(context_id, {})[instance_id] = ip
        return ip

    def lookup_ip(self, context_id: int, instance_id: int) -> str:
        """Resolve a peer instance's host IP for cross-server transfers."""
        try:
            return self.ip_table[context_id][instance_id]
        except KeyError:
            raise BufferError_(
                f"instance {instance_id} has not published an IP for context {context_id}"
            )
