"""Lint exported telemetry runs and Chrome traces (the ``--telemetry`` pass).

Exported observability data is itself an artifact the paper-reproduction
pipeline depends on (the bench reports and the examples ship traces), so
it gets the same treatment as strategies and fluid traces: a static pass
that rejects malformed output before anyone tries to load it in Perfetto.

Checks on a JSONL run (:class:`repro.telemetry.export.TelemetryRun`):

* **schema** — the header carries a known schema version and accurate
  span/event counts; every record has the required fields with the right
  types, and no unknown record types appear;
* **identity** — span ids are unique; a child's dotted id extends its
  parent's (``"3.1"`` under ``"3"``), and the parent exists;
* **nesting** — a child's interval lies inside its parent's;
* **clock** — record ``start`` values are non-decreasing in file order
  (the exporter sorts by (start, seq)), every interval has ``end >=
  start``, instants have ``end == start``, and no span is left open;
* **chrome** — a converted trace (the ``traceEvents`` object form) has
  one ``thread_name`` metadata event per tid, microsecond timestamps, and
  non-negative durations on complete events.

Violations share :class:`repro.analysis.verify_strategy.Violation` so
``python -m repro.analysis --telemetry`` reports uniformly.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.analysis.verify_strategy import Violation
from repro.errors import TelemetryError
from repro.telemetry.export import SCHEMA_VERSION, TelemetryRun, parse_jsonl

#: Record types a JSONL run may contain after the meta header.
_RECORD_TYPES = ("span", "event")

#: Chrome trace phases the exporter emits (flow arrows are s/t/f).
_CHROME_PHASES = ("X", "i", "B", "M", "s", "t", "f")


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def lint_telemetry_run(run: TelemetryRun) -> List[Violation]:
    """Check one parsed JSONL run; returns all violations (empty = clean)."""
    violations: List[Violation] = []

    schema = run.meta.get("schema")
    if schema != SCHEMA_VERSION:
        violations.append(
            Violation(
                "telemetry-schema",
                "meta",
                f"schema {schema!r} != supported {SCHEMA_VERSION}",
            )
        )
    for field, actual in (("spans", len(run.spans)), ("events", len(run.events))):
        declared = run.meta.get(field)
        if declared != actual:
            violations.append(
                Violation(
                    "telemetry-schema",
                    "meta",
                    f"header declares {declared!r} {field}, file has {actual}",
                )
            )

    by_id: Dict[str, Dict[str, Any]] = {}
    last_start = float("-inf")
    for position, record in enumerate(run.records):
        subject = f"record{position}"
        kind = record.get("type")
        if kind not in _RECORD_TYPES:
            violations.append(
                Violation("telemetry-schema", subject, f"unknown record type {kind!r}")
            )
            continue
        span_id = record.get("id")
        if not isinstance(span_id, str) or not span_id:
            violations.append(
                Violation("telemetry-schema", subject, f"bad span id {span_id!r}")
            )
            continue
        subject = f"{kind}:{span_id}"
        if span_id in by_id:
            violations.append(
                Violation("telemetry-identity", subject, "duplicate span id")
            )
        by_id[span_id] = record

        if not isinstance(record.get("name"), str) or not record["name"]:
            violations.append(
                Violation("telemetry-schema", subject, "missing or empty name")
            )
        if not isinstance(record.get("args", {}), dict):
            violations.append(Violation("telemetry-schema", subject, "args is not an object"))

        start = record.get("start")
        end = record.get("end")
        if not _is_number(start):
            violations.append(
                Violation("telemetry-clock", subject, f"non-numeric start {start!r}")
            )
            continue
        if start < last_start:
            violations.append(
                Violation(
                    "telemetry-clock",
                    subject,
                    f"start {start} after previous record's {last_start} "
                    "(records must be start-ordered)",
                )
            )
        last_start = max(last_start, start)
        if end is None:
            if kind == "span":
                violations.append(
                    Violation("telemetry-clock", subject, "span was never closed")
                )
        elif not _is_number(end):
            violations.append(
                Violation("telemetry-clock", subject, f"non-numeric end {end!r}")
            )
        elif end < start:
            violations.append(
                Violation("telemetry-clock", subject, f"end {end} before start {start}")
            )
        elif kind == "event" and end != start:
            violations.append(
                Violation("telemetry-clock", subject, "instant event with end != start")
            )

    for span_id, record in by_id.items():
        parent_id = record.get("parent")
        if parent_id is None:
            continue
        subject = f"{record.get('type')}:{span_id}"
        if not span_id.startswith(f"{parent_id}."):
            violations.append(
                Violation(
                    "telemetry-identity",
                    subject,
                    f"id does not extend parent id {parent_id!r}",
                )
            )
        parent = by_id.get(parent_id)
        if parent is None:
            violations.append(
                Violation("telemetry-identity", subject, f"unknown parent {parent_id!r}")
            )
            continue
        if not _is_number(record.get("start")) or not _is_number(parent.get("start")):
            continue
        if record["start"] < parent["start"]:
            violations.append(
                Violation("telemetry-nesting", subject, "starts before its parent")
            )
        if (
            _is_number(record.get("end"))
            and _is_number(parent.get("end"))
            and record["end"] > parent["end"]
        ):
            violations.append(
                Violation("telemetry-nesting", subject, "ends after its parent")
            )
    return violations


def lint_chrome_trace(payload: Dict[str, Any]) -> List[Violation]:
    """Check a Chrome trace-event object (the ``traceEvents`` form)."""
    violations: List[Violation] = []
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return [Violation("chrome-schema", "trace", "no traceEvents list")]

    named_tids = set()
    for event in events:
        if event.get("ph") == "M" and event.get("name") == "thread_name":
            named_tids.add(event.get("tid"))

    for position, event in enumerate(events):
        subject = f"traceEvents[{position}]"
        phase = event.get("ph")
        if phase not in _CHROME_PHASES:
            violations.append(
                Violation("chrome-schema", subject, f"unexpected phase {phase!r}")
            )
            continue
        if "tid" not in event or "pid" not in event:
            violations.append(Violation("chrome-schema", subject, "missing pid/tid"))
        if phase == "M":
            continue
        if not _is_number(event.get("ts")):
            violations.append(
                Violation("chrome-schema", subject, f"non-numeric ts {event.get('ts')!r}")
            )
        if event.get("tid") not in named_tids:
            violations.append(
                Violation(
                    "chrome-schema",
                    subject,
                    f"tid {event.get('tid')!r} has no thread_name metadata",
                )
            )
        if phase == "X":
            duration = event.get("dur")
            if not _is_number(duration) or duration < 0:
                violations.append(
                    Violation(
                        "chrome-schema", subject, f"complete event with dur {duration!r}"
                    )
                )
        if phase == "i" and event.get("s") not in ("t", "p", "g"):
            violations.append(
                Violation(
                    "chrome-schema", subject, f"instant scope {event.get('s')!r}"
                )
            )
        if phase in ("s", "t", "f") and "id" not in event:
            violations.append(
                Violation("chrome-schema", subject, "flow event without an id")
            )

    # Flow pairing: every flow id needs exactly one start and one finish
    # (steps optional), and the finish must not precede the start.
    flows: Dict[Any, Dict[str, List[float]]] = {}
    for event in events:
        phase = event.get("ph")
        if phase in ("s", "t", "f") and "id" in event and _is_number(event.get("ts")):
            flows.setdefault(event["id"], {"s": [], "t": [], "f": []})[phase].append(
                event["ts"]
            )
    for flow_id in sorted(flows, key=str):
        subject = f"flow:{flow_id}"
        starts, finishes = flows[flow_id]["s"], flows[flow_id]["f"]
        if len(starts) != 1 or len(finishes) != 1:
            violations.append(
                Violation(
                    "chrome-schema",
                    subject,
                    f"{len(starts)} start(s) and {len(finishes)} finish(es); "
                    "expected one of each",
                )
            )
        elif finishes[0] < starts[0]:
            violations.append(
                Violation(
                    "chrome-schema", subject, "flow finishes before it starts"
                )
            )
    return violations


def lint_telemetry_file(path: str) -> List[Violation]:
    """Lint one exported file — JSONL run or Chrome trace, by content.

    A file whose first non-blank line parses as an object with a
    ``traceEvents`` key is treated as a Chrome trace; anything else goes
    through the JSONL run lint. Unreadable/unparsable input surfaces as a
    single ``telemetry-io`` violation rather than an exception, so the CLI
    exits with a report instead of a traceback.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
    except OSError as exc:
        return [Violation("telemetry-io", path, str(exc))]
    stripped = text.lstrip()
    if stripped.startswith("{"):
        try:
            payload = json.loads(text)
        except json.JSONDecodeError:
            payload = None
        if isinstance(payload, dict) and "traceEvents" in payload:
            return lint_chrome_trace(payload)
    try:
        run = parse_jsonl(text)
    except TelemetryError as exc:
        return [Violation("telemetry-io", path, str(exc))]
    return lint_telemetry_run(run)
