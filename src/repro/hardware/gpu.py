"""GPU device model.

A GPU is described by its compute throughput (used by the training
substrate's compute-time model) and its aggregation-kernel characteristics
(used by the communicator when a rank reduces received chunks with local
data).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import TopologyError
from repro.hardware.links import us


@dataclass(frozen=True)
class GpuSpec:
    """Static properties of a GPU SKU."""

    name: str
    #: Effective training compute throughput, FLOP/s (fp16/amp realistic,
    #: not peak). Drives per-iteration compute time.
    compute_flops: float
    #: Effective bandwidth of an elementwise reduce kernel, bytes/s of
    #: *output* produced (reading k inputs is folded into this number).
    reduce_bandwidth: float
    #: Fixed launch overhead per kernel, seconds.
    kernel_launch_overhead: float
    #: Device memory, bytes (bounds buffer registration).
    memory_bytes: float

    def __post_init__(self) -> None:
        if min(self.compute_flops, self.reduce_bandwidth, self.memory_bytes) <= 0:
            raise TopologyError(f"GPU {self.name}: throughputs must be positive")
        if self.kernel_launch_overhead < 0:
            raise TopologyError(f"GPU {self.name}: negative launch overhead")

    def reduce_kernel_time(self, nbytes: float) -> float:
        """Time for one aggregation kernel over ``nbytes`` of output."""
        if nbytes < 0:
            raise TopologyError("reduce_kernel_time: negative size")
        if nbytes == 0:
            return 0.0
        return self.kernel_launch_overhead + nbytes / self.reduce_bandwidth


class GPU:
    """A concrete GPU placed in an instance.

    ``rank`` is the global worker rank (one worker per GPU, as in the
    paper); ``local_index`` is the device index inside the instance.
    """

    def __init__(
        self,
        spec: GpuSpec,
        rank: int,
        instance_id: int,
        local_index: int,
        numa_node: int = 0,
        pcie_switch: int = 0,
    ):
        self.spec = spec
        self.rank = rank
        self.instance_id = instance_id
        self.local_index = local_index
        self.numa_node = numa_node
        self.pcie_switch = pcie_switch

    @property
    def name(self) -> str:
        """Stable display name: ``i<instance>g<local>``."""
        return f"i{self.instance_id}g{self.local_index}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<GPU rank={self.rank} {self.name} {self.spec.name}>"
