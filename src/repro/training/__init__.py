"""Training substrate: models, compute/straggler models, data sharding,
interference, the trainer loop, and a convergence simulator.

This package plays the role of PyTorch + the training scripts in the
paper's evaluation: it produces per-worker compute times (with realistic
skew), drives collectives through a chosen backend each iteration, and
reports the iteration/communication-time metrics the figures plot.
"""

from repro.training.models import (
    GPT2,
    MOE,
    VGG16,
    VIT,
    ModelSpec,
    PAPER_MODELS,
)
from repro.training.compute import ComputeModel
from repro.training.interference import InterferenceModel
from repro.training.data import ShardedDataLoader
from repro.training.trainer import IterationStats, Trainer, TrainerConfig
from repro.training.convergence import AggregationMode, ConvergenceRun, train_convergence

__all__ = [
    "AggregationMode",
    "ComputeModel",
    "ConvergenceRun",
    "GPT2",
    "InterferenceModel",
    "IterationStats",
    "MOE",
    "ModelSpec",
    "PAPER_MODELS",
    "ShardedDataLoader",
    "Trainer",
    "TrainerConfig",
    "VGG16",
    "VIT",
    "train_convergence",
]
