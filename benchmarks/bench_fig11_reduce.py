"""Fig. 11 — Reduce algorithm bandwidth across GPU configurations.

The paper benchmarks Reduce with a 256 MB float tensor over six
configurations of its A100/V100 testbed and reports AdapCC speedups of
1.06–1.23x over NCCL (geomean 1.17x), 1.03–1.29x over MSCCL (1.19x) and
1.32–1.58x over Blink (1.46x). This bench reproduces the comparison (at
64 MB — the paper notes "similar performance is observed in various data
sizes") and checks the ordering: AdapCC wins every config, Blink trails.
"""

import pytest

from repro.bench import Table, geometric_mean, measure_algorithm_bandwidth
from repro.hardware import MB
from repro.hardware.presets import make_config
from repro.synthesis import Primitive

TENSOR_BYTES = 64 * MB

CONFIGS = [
    ("A100:(4,4)", make_config([4, 4])),
    ("A100:(4,4,4,4)", make_config([4, 4, 4, 4])),
    ("A100:(4,4) V100:(4,4)", make_config([4, 4], [4, 4])),
    ("A100:(4,4,4,4) V100:(4,4)", make_config([4, 4, 4, 4], [4, 4])),
    ("A100:(2,2) V100:(4,4)", make_config([2, 2], [4, 4])),
]

BACKENDS = ["adapcc", "nccl", "msccl", "blink"]


def measure():
    results = {}
    for label, specs in CONFIGS:
        for backend in BACKENDS:
            results[(label, backend)] = measure_algorithm_bandwidth(
                specs, backend, Primitive.REDUCE, TENSOR_BYTES
            )
    return results


def test_fig11_reduce_algorithm_bandwidth(run_once):
    results = run_once(measure)

    table = Table("Fig. 11 — Reduce Algo.bw (GB/s), 64 MB float tensor", BACKENDS)
    speedups = {b: [] for b in BACKENDS[1:]}
    for label, _specs in CONFIGS:
        row = [results[(label, b)] / 1e9 for b in BACKENDS]
        table.add_row(label, row)
        for baseline in BACKENDS[1:]:
            speedups[baseline].append(
                results[(label, "adapcc")] / results[(label, baseline)]
            )
    table.show()
    for baseline in BACKENDS[1:]:
        print(
            f"AdapCC speedup vs {baseline}: geomean {geometric_mean(speedups[baseline]):.2f}x "
            f"(paper: "
            f"{'1.17x' if baseline == 'nccl' else '1.19x' if baseline == 'msccl' else '1.46x'})"
        )

    # Shape checks: AdapCC at least matches every baseline per config, and
    # strictly wins in geometric mean; Blink is the weakest baseline.
    for label, _specs in CONFIGS:
        for baseline in BACKENDS[1:]:
            assert results[(label, "adapcc")] >= 0.97 * results[(label, baseline)], (
                label,
                baseline,
            )
    assert geometric_mean(speedups["nccl"]) > 1.0
    assert geometric_mean(speedups["blink"]) >= geometric_mean(speedups["nccl"])
