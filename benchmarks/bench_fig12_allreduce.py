"""Fig. 12 — AllReduce algorithm bandwidth across GPU configurations.

Paper: AdapCC achieves 1.05–1.29x over NCCL (geomean 1.19x), 1.02–1.21x
over MSCCL (1.15x) and 1.30–1.61x over Blink (1.49x), credited to better
reduce/broadcast stage parallelization and link-property awareness.
"""

import pytest

from repro.bench import Table, geometric_mean, measure_algorithm_bandwidth
from repro.hardware import MB
from repro.hardware.presets import make_config
from repro.synthesis import Primitive

TENSOR_BYTES = 64 * MB

CONFIGS = [
    ("A100:(4,4)", make_config([4, 4])),
    ("A100:(4,4,4,4)", make_config([4, 4, 4, 4])),
    ("A100:(4,4) V100:(4,4)", make_config([4, 4], [4, 4])),
    ("A100:(4,4,4,4) V100:(4,4)", make_config([4, 4, 4, 4], [4, 4])),
    ("A100:(2,2) V100:(4,4)", make_config([2, 2], [4, 4])),
]

BACKENDS = ["adapcc", "nccl", "msccl", "blink"]


def measure():
    results = {}
    for label, specs in CONFIGS:
        for backend in BACKENDS:
            results[(label, backend)] = measure_algorithm_bandwidth(
                specs, backend, Primitive.ALLREDUCE, TENSOR_BYTES
            )
    return results


def test_fig12_allreduce_algorithm_bandwidth(run_once):
    results = run_once(measure)

    table = Table("Fig. 12 — AllReduce Algo.bw (GB/s), 64 MB float tensor", BACKENDS)
    speedups = {b: [] for b in BACKENDS[1:]}
    for label, _specs in CONFIGS:
        table.add_row(label, [results[(label, b)] / 1e9 for b in BACKENDS])
        for baseline in BACKENDS[1:]:
            speedups[baseline].append(
                results[(label, "adapcc")] / results[(label, baseline)]
            )
    table.show()
    paper = {"nccl": "1.19x", "msccl": "1.15x", "blink": "1.49x"}
    for baseline in BACKENDS[1:]:
        print(
            f"AdapCC speedup vs {baseline}: geomean "
            f"{geometric_mean(speedups[baseline]):.2f}x (paper: {paper[baseline]})"
        )

    for label, _specs in CONFIGS:
        for baseline in BACKENDS[1:]:
            assert results[(label, "adapcc")] >= 0.97 * results[(label, baseline)], (
                label,
                baseline,
            )
    assert geometric_mean(speedups["nccl"]) > 1.0
    # Blink's unpipelined stages make it the weakest AllReduce baseline.
    assert geometric_mean(speedups["blink"]) > geometric_mean(speedups["msccl"]) * 0.95
