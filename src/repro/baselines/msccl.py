"""MSCCL baseline model (msccl-tools pareto-optimal algorithms on NCCL).

The paper runs MSCCL with the pareto-optimal SCCL algorithms "officially
recommended by MSCCL, which searches through different latency-bandwidth
tradeoffs" (Sec. VI-B). The model encodes the observed behaviour:

* **Designed for DGX-like homogeneous architectures** — "the communication
  strategies employed by MSCCL are designed for architectures similar to
  DGX1, without taking into account the actual properties of the
  underlying links" (Sec. VI-C): graphs are rank-ordered hierarchical
  trees built from *nominal* link classes, never from measurements, and
  never refreshed.
* **Latency-bandwidth tradeoff** — two algorithm points: a latency-optimal
  shallow tree (small tensors) and a bandwidth-optimal chunked pipeline
  with two channels (large tensors); selection by message size, as the
  pareto frontier prescribes.
* **Fixed chunk size from the sketch** — "the chunk size also remains
  fixed, which does not effectively optimize the tradeoff between chunk
  pipelining and reduced latency" (Sec. VI-C). 1 MiB, the msccl-tools
  default instance size for these algorithms.
* **Runs as NCCL kernels** — two channels (the paper's MSCCL outperforms
  single-channel NCCL on TCP, so it is not stream-limited to one).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.baselines.common import Backend, register_backend
from repro.errors import SynthesisError
from repro.hardware.links import MB
from repro.synthesis.aggregation import default_aggregation
from repro.synthesis.routing import Tree, alltoall_flows, broadcast_flows, reduce_flows
from repro.synthesis.strategy import Primitive, Strategy, SubCollective
from repro.topology.graph import gpu_node

#: The sketch's fixed instance (chunk) size.
MSCCL_CHUNK_BYTES = 1 * MB
#: Number of parallel channels the recommended algorithms instantiate.
MSCCL_CHANNELS = 2
#: Below this size the latency-optimal algorithm wins on the pareto curve.
LATENCY_OPTIMAL_THRESHOLD = 4 * MB


@register_backend
class MscclBackend(Backend):
    """Pareto-point algorithms over rank-ordered homogeneous graphs."""

    name = "msccl"

    def _groups(self, participants: List[int]) -> Dict[int, List[int]]:
        groups: Dict[int, List[int]] = {}
        for rank in participants:
            groups.setdefault(self.topology.cluster.gpu(rank).instance_id, []).append(rank)
        return {iid: sorted(ranks) for iid, ranks in sorted(groups.items())}

    def _tree(self, participants: List[int], root: int, channel: int, shallow: bool) -> Tree:
        """Rank-ordered hierarchical tree; channel rotates local leaders.

        ``shallow``: latency-optimal point — leaders send straight to the
        root (depth 2). Otherwise the bandwidth-optimal point chains
        instances in rank order (maximal pipelining, homogeneity assumed).
        """
        groups = self._groups(participants)
        root_instance = self.topology.cluster.gpu(root).instance_id
        tree: Tree = {root: root}
        leaders: Dict[int, int] = {}
        for instance_id, ranks in groups.items():
            if instance_id == root_instance:
                leaders[instance_id] = root
            else:
                leaders[instance_id] = ranks[channel % len(ranks)]
            for rank in ranks:
                if rank != leaders[instance_id]:
                    tree[rank] = leaders[instance_id]
        other = [iid for iid in groups if iid != root_instance]
        if shallow:
            for instance_id in other:
                tree[leaders[instance_id]] = leaders[root_instance]
        else:
            chain = other + [root_instance]  # rank order, not bandwidth order
            for a, b in zip(chain, chain[1:]):
                tree[leaders[a]] = leaders[b]
        return tree

    def _plan(
        self,
        primitive: Primitive,
        tensor_size: float,
        participants: Iterable[int],
        root: Optional[int] = None,
    ) -> Strategy:
        participants = sorted(set(participants))
        if not participants:
            raise SynthesisError("no participants")
        root = participants[0] if root is None else root
        shallow = tensor_size < LATENCY_OPTIMAL_THRESHOLD
        point = "latency" if shallow else "bandwidth"

        if primitive is Primitive.ALLTOALL:
            world = len(participants)
            share = tensor_size / world
            flows = alltoall_flows(self.topology, participants)
            subcollectives = [
                SubCollective(
                    index=index,
                    size=share / MSCCL_CHANNELS,
                    chunk_size=min(MSCCL_CHUNK_BYTES, max(1.0, share / MSCCL_CHANNELS)),
                    flows=[f for f in flows],
                )
                for index in range(MSCCL_CHANNELS)
            ]
            return Strategy(
                primitive=primitive,
                tensor_size=tensor_size,
                participants=participants,
                subcollectives=subcollectives,
                routing_family="msccl-a2a",
            )

        if primitive in (Primitive.ALLGATHER, Primitive.REDUCE_SCATTER):
            per_root = (
                tensor_size
                if primitive is Primitive.ALLGATHER
                else tensor_size / len(participants)
            )
            subcollectives = []
            for index, rank in enumerate(participants):
                tree = self._tree(participants, rank, channel=index, shallow=shallow)
                if primitive is Primitive.ALLGATHER:
                    flows = broadcast_flows(self.topology, tree, rank)
                    aggregation: Dict = {}
                else:
                    flows = reduce_flows(self.topology, tree, rank)
                    aggregation = default_aggregation(tree, rank)
                subcollectives.append(
                    SubCollective(
                        index=index,
                        size=per_root,
                        chunk_size=min(MSCCL_CHUNK_BYTES, max(1.0, per_root)),
                        flows=flows,
                        aggregation=aggregation,
                        root=gpu_node(rank),
                    )
                )
            return Strategy(
                primitive=primitive,
                tensor_size=tensor_size,
                participants=participants,
                subcollectives=subcollectives,
                routing_family=f"msccl-{point}",
            )

        # Reduce / Broadcast / AllReduce on MSCCL_CHANNELS channels. The
        # sketches rotate roots over the first instances only (DGX-style
        # symmetric assumption).
        groups = self._groups(participants)
        instance_ids = sorted(groups)
        share = tensor_size / MSCCL_CHANNELS
        subcollectives = []
        for index in range(MSCCL_CHANNELS):
            if primitive is Primitive.ALLREDUCE:
                sc_root = groups[instance_ids[index % len(instance_ids)]][0]
            else:
                sc_root = root
            tree = self._tree(participants, sc_root, channel=index, shallow=shallow)
            if primitive is Primitive.BROADCAST:
                flows = broadcast_flows(self.topology, tree, sc_root)
                aggregation = {}
            else:
                flows = reduce_flows(self.topology, tree, sc_root)
                aggregation = default_aggregation(tree, sc_root)
            subcollectives.append(
                SubCollective(
                    index=index,
                    size=share,
                    chunk_size=min(MSCCL_CHUNK_BYTES, max(1.0, share)),
                    flows=flows,
                    aggregation=aggregation,
                    root=gpu_node(sc_root),
                )
            )
        return Strategy(
            primitive=primitive,
            tensor_size=tensor_size,
            participants=participants,
            subcollectives=subcollectives,
            routing_family=f"msccl-{point}",
        )
