"""Shared resources for simulated processes.

:class:`Store` is an unbounded-or-bounded FIFO queue of arbitrary items —
the analogue of the Work/Result queues in AdapCC's communicator.
:class:`Semaphore` provides counted mutual exclusion, used to model
exclusive use of a hardware unit (e.g. a copy engine).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from repro.errors import SimulationError
from repro.simulation.engine import Event, Simulator


class Store:
    """A FIFO queue that simulated processes put items into and get from.

    ``put`` blocks (returns a pending event) when the store is at
    ``capacity``; ``get`` blocks when the store is empty. Waiters are served
    in FIFO order, so the store is fair.
    """

    def __init__(self, sim: Simulator, capacity: float = float("inf")):
        if capacity <= 0:
            raise SimulationError("store capacity must be positive")
        self.sim = sim
        self.capacity = capacity
        self.items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[Event] = deque()
        self._putter_items: Deque[Any] = deque()

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> Event:
        """Add ``item``; the returned event triggers once the item is stored."""
        event = Event(self.sim)
        if self._getters:
            # Hand the item straight to the oldest waiting getter.
            getter = self._getters.popleft()
            getter.succeed(item)
            event.succeed()
        elif len(self.items) < self.capacity:
            self.items.append(item)
            event.succeed()
        else:
            self._putters.append(event)
            self._putter_items.append(item)
        return event

    def get(self) -> Event:
        """Remove and return the oldest item; blocks while empty."""
        event = Event(self.sim)
        if self.items:
            event.succeed(self.items.popleft())
            self._admit_putter()
        else:
            self._getters.append(event)
        return event

    def try_get(self) -> Optional[Any]:
        """Non-blocking get: the oldest item, or ``None`` when empty."""
        if not self.items:
            return None
        item = self.items.popleft()
        self._admit_putter()
        return item

    def _admit_putter(self) -> None:
        if self._putters and len(self.items) < self.capacity:
            putter = self._putters.popleft()
            self.items.append(self._putter_items.popleft())
            putter.succeed()


class Semaphore:
    """A counted lock for simulated processes.

    ``acquire`` returns an event that triggers once a slot is free;
    ``release`` frees a slot and wakes the oldest waiter.
    """

    def __init__(self, sim: Simulator, slots: int = 1):
        if slots < 1:
            raise SimulationError("semaphore needs at least one slot")
        self.sim = sim
        self.slots = slots
        self._in_use = 0
        self._waiters: Deque[Event] = deque()

    @property
    def available(self) -> int:
        """Number of currently free slots."""
        return self.slots - self._in_use

    def acquire(self) -> Event:
        """Event that fires once a slot is held (FIFO among waiters)."""
        event = Event(self.sim)
        if self._in_use < self.slots:
            self._in_use += 1
            event.succeed()
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        """Free a slot, waking the oldest waiter if any."""
        if self._in_use == 0:
            raise SimulationError("release() of a semaphore that is not held")
        if self._waiters:
            self._waiters.popleft().succeed()
        else:
            self._in_use -= 1
