"""The communicator service: Work Queue → execution → Result Queue.

Fig. 4's dataflow: each iteration the ML framework pushes tensors into a
per-rank *Work Queue*; persistent context threads poll it, execute the
communication, and deliver communicated tensors through the *Result Queue*
for continued computation. :class:`CollectiveService` reproduces that
loop on the simulator: a dispatcher process matches same-position requests
across ranks (a collective needs all participants' submissions), executes
them in submission order, and completes every rank's result queue.

Failure paths (exercised by :mod:`repro.chaos`):

* **timeout + retry with backoff** — with ``timeout_seconds`` set, once
  the first submission of a round arrives the dispatcher waits at most
  ``timeout_seconds`` for each further one, retrying up to ``max_retries``
  times with the window growing by ``backoff_factor`` per silent attempt,
  capped at ``max_backoff_seconds`` (the jitter multiplies the *capped*
  window, so the cap bounds the expected delay, not the draw order);
* **terminal retry exhaustion** — with ``fail_on_exhausted=True`` the
  service raises :class:`~repro.errors.RetryBudgetExhausted` instead of
  degrading, for deployments where a partial collective is worse than a
  crash;
* **graceful degradation** — when retries are exhausted the round executes
  among the ranks that did submit (the strategy provider is asked for a
  strategy on the *shrunk* participant set), the missing ranks receive the
  partial result under :data:`DEGRADED_SEQUENCE`, and the round is logged
  in :attr:`CollectiveService.degradations`;
* **duplicate suppression** — a submission replayed at the queue boundary
  (same sequence number) is consumed and discarded, so a duplicated
  message can never double-count a tensor;
* **epoch fencing** — a submission stamped with a coordinator epoch older
  than the one the service has adopted (:meth:`CollectiveService.
  advance_epoch`) was composed under a deposed coordinator and is dropped,
  counted in ``recovery_fenced_messages_total`` under the ``work-queue``
  site (see :mod:`repro.recovery`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.errors import CommunicatorError, RetryBudgetExhausted
from repro.integrity.channel import data_plane
from repro.integrity.checksums import payload_digest
from repro.runtime.collectives import launch_allreduce
from repro.runtime.queues import WorkItem, WorkQueues
from repro.synthesis.strategy import Primitive, Strategy
from repro.telemetry.core import hub as telemetry_hub
from repro.topology.graph import LogicalTopology

#: Sequence number used when delivering a degraded (partial) result to a
#: rank whose own submission never arrived — it has no real sequence to
#: match, and the framework side must be able to tell the two apart.
DEGRADED_SEQUENCE = -1


@dataclass(frozen=True)
class DegradedCollective:
    """Record of one round that completed without every rank."""

    missing_ranks: Tuple[int, ...]
    completed_at: float
    retries: int


class CollectiveService:
    """Executes queued collective requests in order, across all ranks.

    One service per job. Ranks submit with :meth:`submit`; the dispatcher
    (a simulated process started by :meth:`start`) waits until every
    participant has submitted the next request, checks they agree on the
    primitive, executes, and pushes each rank's output into its result
    queue. FIFO order per rank is preserved — the paper's "executed in
    order" guarantee.

    With ``timeout_seconds=None`` (the default) the dispatcher waits
    forever, the seed behaviour. Setting it enables the failure paths
    documented in the module docstring.
    """

    def __init__(
        self,
        topology: LogicalTopology,
        strategy_provider,
        byte_scale: float = 1.0,
        timeout_seconds: Optional[float] = None,
        max_retries: int = 2,
        backoff_factor: float = 2.0,
        jitter_fraction: float = 0.0,
        rng: Optional[np.random.Generator] = None,
        seed: int = 0,
        max_backoff_seconds: Optional[float] = None,
        fail_on_exhausted: bool = False,
    ):
        if timeout_seconds is not None and timeout_seconds <= 0:
            raise CommunicatorError("timeout must be positive")
        if max_retries < 0:
            raise CommunicatorError("max_retries must be non-negative")
        if backoff_factor < 1.0:
            raise CommunicatorError("backoff factor must be >= 1")
        if not 0.0 <= jitter_fraction < 1.0:
            raise CommunicatorError("jitter fraction must be in [0, 1)")
        if max_backoff_seconds is not None:
            if timeout_seconds is None:
                raise CommunicatorError("a backoff cap needs a timeout")
            if max_backoff_seconds < timeout_seconds:
                raise CommunicatorError(
                    "backoff cap must be at least the base timeout"
                )
        self.topology = topology
        self.sim = topology.cluster.sim
        self.jitter_fraction = jitter_fraction
        #: The session RNG every retry-window jitter draw flows through.
        #: Always an *explicit* generator — the caller's session RNG, or a
        #: fresh one from ``seed`` — never numpy's module-level default,
        #: so two processes replaying the same chaos seed draw identical
        #: jitter and their traces stay byte-comparable.
        self.rng = rng if rng is not None else np.random.default_rng(seed)
        #: Callable (primitive, tensor_size, participants) -> Strategy.
        #: Under degradation it is called with the shrunk participant list,
        #: so it must be able to re-synthesize on a sub-topology.
        self.strategy_provider = strategy_provider
        self.byte_scale = byte_scale
        self.timeout_seconds = timeout_seconds
        self.max_retries = max_retries
        self.backoff_factor = backoff_factor
        self.max_backoff_seconds = max_backoff_seconds
        self.fail_on_exhausted = fail_on_exhausted
        self.queues: Dict[int, WorkQueues] = {
            gpu.rank: WorkQueues(self.sim, gpu.rank) for gpu in topology.cluster.gpus
        }
        self.executed = 0
        #: One entry per round that ran without a full rank set.
        self.degradations: List[DegradedCollective] = []
        #: Duplicated submissions that were consumed and discarded.
        self.duplicates_suppressed = 0
        self._running = False
        #: One outstanding work-queue poll per rank, persisted across
        #: rounds: a poll that outlived its round's timeout stays armed and
        #: captures the rank's next (possibly very late) submission without
        #: losing it to a stale getter.
        self._pending: Dict[int, object] = {}
        #: Sequence numbers already folded into a collective; a replayed
        #: submission carrying one of these is a duplicate.
        self._served: Set[int] = set()
        #: The control-plane epoch this service currently accepts. A
        #: submission stamped with an older epoch was composed under a
        #: deposed coordinator and is fenced (dropped and counted) in
        #: :meth:`_harvest`; unstamped submissions are epoch-unaware
        #: (the seed behaviour) and always pass.
        self.epoch = 1
        #: Stale-epoch submissions dropped at the queue boundary.
        self.fenced_submissions = 0

    # -- epoch fencing --------------------------------------------------------------

    def advance_epoch(self, epoch: int) -> None:
        """Adopt a newly announced coordinator epoch (monotonic)."""
        if epoch < self.epoch:
            raise CommunicatorError(
                f"epoch must not regress: {epoch} < {self.epoch}"
            )
        self.epoch = epoch

    # -- framework-facing API -------------------------------------------------------

    def submit(
        self,
        rank: int,
        primitive: Primitive,
        tensor: np.ndarray,
        epoch: Optional[int] = None,
    ) -> int:
        """Push one rank's request; returns its sequence number.

        ``epoch`` stamps the submission with the coordinator epoch the
        rank composed it under; omit it for epoch-unaware submitters.
        """
        if rank not in self.queues:
            raise CommunicatorError(f"unknown rank {rank}")
        if epoch is None:
            return self.queues[rank].submit(primitive, tensor)
        return self.queues[rank].submit(primitive, tensor, epoch=epoch)

    def fetch(self, rank: int):
        """Event yielding the next (sequence, output tensor) for a rank.

        A degraded delivery carries :data:`DEGRADED_SEQUENCE` instead of a
        real sequence number.
        """
        return self.queues[rank].fetch_result()

    # -- dispatcher -----------------------------------------------------------------

    def start(self) -> None:
        """Spawn the dispatcher process (idempotent)."""
        if self._running:
            return
        self._running = True
        self.sim.process(self._dispatch(), name="collective-service")

    def stop(self) -> None:
        """Stop after the in-flight request completes."""
        self._running = False

    def _poll(self, rank: int):
        """The rank's outstanding work poll, creating one if needed."""
        event = self._pending.get(rank)
        if event is None:
            event = self.queues[rank].poll_work()
            self._pending[rank] = event
        return event

    def _harvest(self, items: Dict[int, WorkItem]) -> None:
        """Consume every triggered poll into ``items``, discarding
        duplicated submissions (already-served sequence numbers) and
        fencing stale-epoch ones."""
        for rank in self.queues:
            while rank not in items:
                event = self._poll(rank)
                if not event.triggered:
                    break
                self._pending[rank] = None
                item: WorkItem = event.value
                if item.sequence in self._served:
                    self.duplicates_suppressed += 1
                    continue
                item_epoch = item.metadata.get("epoch")
                if item_epoch is not None and item_epoch < self.epoch:
                    self.fenced_submissions += 1
                    telemetry = telemetry_hub()
                    if telemetry.enabled:
                        telemetry.instant(
                            "epoch-fenced",
                            self.sim.now,
                            category="recovery",
                            track="recovery",
                            site="work-queue",
                            message_epoch=item_epoch,
                            current_epoch=self.epoch,
                            sender=rank,
                        )
                        telemetry.metrics.counter(
                            "recovery_fenced_messages_total",
                            "stale-epoch messages dropped at the fence",
                        ).inc(site="work-queue")
                    continue
                items[rank] = item

    def _dispatch(self):
        ranks = sorted(self.queues)
        while self._running:
            items: Dict[int, WorkItem] = {}
            # A round opens with the first submission; an idle service
            # never times out.
            self._harvest(items)
            while not items:
                yield self.sim.any_of([self._poll(r) for r in ranks])
                self._harvest(items)
            # Wait for the remaining participants — forever without a
            # timeout, else with retry/backoff windows that reset on
            # progress.
            attempts = 0
            while len(items) < len(ranks):
                polls = [self._poll(r) for r in ranks if r not in items]
                if self.timeout_seconds is None:
                    yield self.sim.any_of(polls)
                    self._harvest(items)
                    continue
                window = self.timeout_seconds * self.backoff_factor**attempts
                if self.max_backoff_seconds is not None:
                    window = min(window, self.max_backoff_seconds)
                if self.jitter_fraction > 0.0:
                    # Spread retries so lock-stepped ranks don't re-probe
                    # in unison; the draw comes from the session RNG, so
                    # same-seed replays jitter identically.
                    window *= 1.0 + self.jitter_fraction * float(
                        self.rng.uniform(-1.0, 1.0)
                    )
                timer = self.sim.timeout(window)
                yield self.sim.any_of([*polls, timer])
                collected = len(items)
                self._harvest(items)
                if timer.triggered and len(items) == collected:
                    attempts += 1
                    telemetry = telemetry_hub()
                    if telemetry.enabled:
                        telemetry.instant(
                            "service-retry",
                            self.sim.now,
                            category="service",
                            track="service",
                            attempt=attempts,
                            window_seconds=window,
                            waiting_on=[r for r in ranks if r not in items],
                        )
                        telemetry.metrics.counter(
                            "service_retries_total",
                            "dispatcher timeout windows that expired silently",
                        ).inc()
                    if attempts > self.max_retries:
                        if self.fail_on_exhausted:
                            raise RetryBudgetExhausted(
                                self.executed,
                                attempts,
                                [r for r in ranks if r not in items],
                            )
                        break
            missing = [r for r in ranks if r not in items]
            yield from self._execute(items, missing, attempts)

    def _execute(self, items: Dict[int, WorkItem], missing: List[int], retries: int):
        """Run one matched round, degraded if ``missing`` is non-empty."""
        work = [items[rank] for rank in sorted(items)]
        primitives = {item.primitive for item in work}
        if len(primitives) != 1:
            raise CommunicatorError(
                f"ranks disagree on the collective: {sorted(p.value for p in primitives)}"
            )
        primitive = work[0].primitive
        if primitive is not Primitive.ALLREDUCE:
            raise CommunicatorError(
                "the queued dispatcher currently serves AllReduce (the "
                f"training path); got {primitive.value}"
            )
        tensors = {item.rank: item.tensor for item in work}
        active = sorted(tensors)
        length = len(work[0].tensor)
        tensor_size = length * work[0].tensor.itemsize * self.byte_scale
        strategy: Strategy = self.strategy_provider(primitive, tensor_size, active)
        # The dispatcher runs *inside* the simulation, so it uses the
        # non-blocking launch form and yields on completion.
        pending = launch_allreduce(
            self.topology, strategy, tensors, byte_scale=self.byte_scale
        )
        yield pending.done
        result = pending.result()
        # End-of-collective digest exchange: when an integrity monitor is
        # attached to the data plane, every rank contributes its *input*
        # digest and checks the shared output against the sum — catching
        # corruption the per-hop checksums cannot see (e.g. inside an
        # aggregation buffer) before the result reaches the framework.
        monitor = data_plane().monitor
        if monitor is not None:
            input_digests = {
                rank: payload_digest(tensors[rank]) for rank in active
            }
            outputs = {rank: result.outputs[rank] for rank in active}
            monitor.check_collective(
                input_digests, outputs, site="service", now=self.sim.now
            )
        for item in work:
            self._served.add(item.sequence)
            self.queues[item.rank].complete(item, result.outputs[item.rank])
        telemetry = telemetry_hub()
        if telemetry.enabled:
            telemetry.metrics.counter(
                "service_rounds_total", "collective rounds dispatched"
            ).inc(outcome="degraded" if missing else "complete")
        if missing:
            if telemetry.enabled:
                telemetry.instant(
                    "service-degraded",
                    self.sim.now,
                    category="service",
                    track="service",
                    missing_ranks=list(missing),
                    retries=retries,
                    active=len(active),
                )
            self.degradations.append(
                DegradedCollective(tuple(missing), self.sim.now, retries)
            )
            # Graceful degradation: the absent ranks still receive the
            # partial sum (every AllReduce participant holds the same
            # output) so training can continue without them.
            reference = result.outputs[active[0]]
            for rank in missing:
                self.queues[rank].result.put((DEGRADED_SEQUENCE, reference.copy()))
        self.executed += 1
