"""Bridge from the ``FluidNetwork.recorder`` protocol into the hub.

The fluid network already has one observation hook — objects with a
``record(time, kind, subject, **payload)`` method (see
:class:`repro.simulation.records.TraceRecorder`). Telemetry reuses that
protocol instead of adding a second hook: a :class:`TelemetryRecorder`
attached alongside any lint recorder turns ``net-flow-start``/``end``/
``cancel`` events into per-link spans and flow metrics.

It deliberately declares ``wants_rates = False``: the per-recompute
``net-rates`` allocation snapshot exists for the fairness lint and is
expensive to build, so a telemetry-only attachment must not trigger it.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.telemetry.core import Span, TelemetryHub, hub


def _flow_track(tag: str, subject: str) -> str:
    """One track per link: parse the ``i->j`` segment out of a flow tag."""
    for part in reversed(tag.split(":")):
        if "->" in part:
            return f"link:{part}"
    return f"net:{subject}" if not tag else f"net:{tag}"


class TelemetryRecorder:
    """Recorder-protocol adapter feeding flow lifecycles into a hub."""

    #: Signal to :class:`repro.simulation.fluid.FluidNetwork` that this
    #: recorder has no use for ``net-rates`` snapshots.
    wants_rates = False

    def __init__(self, target: Optional[TelemetryHub] = None):
        self._hub = target or hub()
        self._open_flows: Dict[int, Span] = {}
        self._flow_count = 0

    def record(self, time: float, kind: str, subject: str, **payload) -> None:
        """Consume one fluid-network observation (recorder protocol)."""
        telemetry = self._hub
        if not telemetry.enabled:
            return
        if kind == "net-flow-start":
            flow = payload.get("flow")
            # Transfer ids come from a process-global counter; exporting
            # them raw would make two same-seed replays differ byte-wise.
            # The span instead carries this recorder's own sequential index.
            self._flow_count += 1
            span = telemetry.begin(
                payload.get("tag") or subject,
                time,
                category="net",
                track=_flow_track(payload.get("tag", ""), subject),
                flow=self._flow_count,
                bytes=payload.get("size", 0.0),
            )
            if span is not None and flow is not None:
                self._open_flows[flow] = span
        elif kind in ("net-flow-end", "net-flow-cancel"):
            flow = payload.get("flow")
            span = self._open_flows.pop(flow, None)
            if span is not None:
                if kind == "net-flow-cancel":
                    span.args["cancelled"] = True
                    span.args["remaining_bytes"] = payload.get("remaining", 0.0)
                telemetry.end(span, time)
            metrics = telemetry.metrics
            metrics.counter(
                "net_flows_total", "fluid-network transfers finished or cancelled"
            ).inc(outcome="cancelled" if kind == "net-flow-cancel" else "completed")
        # net-rates and chaos-* kinds are intentionally ignored here: rates
        # snapshots are the lint's concern, chaos events are mirrored into
        # telemetry by the injector itself (with richer context).


def network_recorder() -> Optional[TelemetryRecorder]:
    """A fresh :class:`TelemetryRecorder`, or ``None`` when telemetry is off.

    Called by :class:`~repro.simulation.fluid.FluidNetwork` at
    construction so every network created under an enabled hub traces its
    flows without the caller wiring anything.
    """
    current = hub()
    if not current.enabled:
        return None
    return TelemetryRecorder(current)
