"""Fig. 1 — cloud network variability over a 6-hour window.

The paper measures bandwidth and latency between two 16-vCPU / 15 Gbps
cloud instances for six hours and reports degradation from peak of up to
34 % (bandwidth) and 17 % (latency). This bench generates the equivalent
trace, prints its summary statistics, and replays it onto a simulated
2-instance pair to confirm the achieved transfer rates track the trace.
"""

import numpy as np
import pytest

from repro.hardware import Cluster, InstanceSpec, NicSpec, a100_server, gbps
from repro.hardware.links import LinkSpec, LinkType, us
from repro.network.shaping import TraceShaper
from repro.network.traces import generate_cloud_trace
from repro.simulation import Simulator


def cloud_pair():
    """Two 15 Gbps cloud instances (the paper's measurement setup)."""
    nic = LinkSpec(LinkType.TCP, bandwidth=gbps(15), latency=us(50), per_stream_cap=gbps(15))
    spec = lambda: InstanceSpec(  # noqa: E731
        name="cloud16vcpu",
        gpu=a100_server().gpu,
        num_gpus=1,
        pcie=a100_server().pcie,
        nics=(NicSpec("eth0", nic),),
    )
    return [spec(), spec()]


def measure():
    trace = generate_cloud_trace(duration=6 * 3600.0, seed=1)
    stats = trace.degradation()

    # Replay onto a simulated pair and sample achieved bandwidth hourly.
    sim = Simulator()
    cluster = Cluster(sim, cloud_pair())
    shaper = TraceShaper(cluster, trace, interval=60.0, offsets=[0.0, 0.0])
    shaper.start()
    achieved = []
    probe_bytes = 200e6
    for hour in range(6):
        sim.run(until=hour * 3600.0 + 1.0)
        start = sim.now
        done = cluster.network.transfer(cluster.gpu_path(0, 1), probe_bytes)
        sim.run_until_complete(done)
        achieved.append(probe_bytes / (sim.now - start))
    shaper.stop()
    return stats, achieved


def test_fig01_cloud_trace(run_once):
    stats, achieved = run_once(measure)

    print("\nFig. 1 — cloud bandwidth/latency variability (6 h trace)")
    print(f"bandwidth degradation from peak: {stats['bandwidth_drop_from_peak'] * 100:.1f} %"
          f"   (paper: 34 %)")
    print(f"latency rise from best:          {stats['latency_rise_from_best'] * 100:.1f} %"
          f"   (paper: 17 %)")
    print("achieved transfer rate by hour (Gbps): "
          + "  ".join(f"{8 * b / 1e9:.2f}" for b in achieved))

    assert stats["bandwidth_drop_from_peak"] == pytest.approx(0.34, abs=0.03)
    assert stats["latency_rise_from_best"] == pytest.approx(0.17, abs=0.03)
    # The replayed link must actually exhibit the variability.
    assert max(achieved) / min(achieved) > 1.15
