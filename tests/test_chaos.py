"""Conformance suite for the chaos fault-injection subsystem.

Central claims, asserted per seed (override/extend with the
``REPRO_CHAOS_SEED`` environment variable, as the CI chaos job does):

* **replay determinism** — the same :class:`FaultPlan` replayed twice
  yields an identical event trace and identical final tensors;
* **bitwise exactness** — every chaos iteration's AllReduce equals the
  elementwise sum over the ranks that contributed, and a stragglers-only
  chaos run produces exactly the tensors of the fault-free run;
* **eviction/rejoin invariants** — eviction shrinks the group and
  re-synthesizes the strategy, shards always tile the dataset, the global
  batch never changes, and a transient crasher rejoins cleanly;
* **queue-boundary faults** — dropped submissions drive the service's
  timeout/retry/degradation path, duplicated ones are suppressed;
* **lint** — recorded chaos traces satisfy the fluid invariants and the
  chaos-specific well-formedness checks.
"""

import os

import numpy as np
import pytest

from repro.analysis.lint_chaos import lint_chaos
from repro.chaos import (
    DROP,
    DUPLICATE,
    ChaosInjector,
    ChaosRunner,
    CrashFault,
    FaultPlan,
    LinkFault,
    MessageFault,
    StragglerFault,
)
from repro.errors import ChaosError, CommunicatorError
from repro.hardware import Cluster, make_homo_cluster
from repro.runtime.service import DEGRADED_SEQUENCE, CollectiveService
from repro.simulation import Simulator
from repro.simulation.records import TraceRecorder
from repro.synthesis import Primitive, Synthesizer
from repro.topology import LogicalTopology

#: The CI chaos job sweeps this over several fixed seeds.
CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "7"))

SPECS = make_homo_cluster(num_servers=2, gpus_per_server=4)
WORLD = 8


def run_plan(plan, length=256, recorder=None):
    return ChaosRunner(SPECS, plan, length=length, recorder=recorder).run()


class TestFaultPlan:
    def test_generate_is_seed_deterministic(self):
        a = FaultPlan.generate(seed=CHAOS_SEED, world=WORLD, iterations=4)
        b = FaultPlan.generate(seed=CHAOS_SEED, world=WORLD, iterations=4)
        assert a.signature() == b.signature()

    def test_different_seeds_differ(self):
        signatures = {
            FaultPlan.generate(seed=s, world=WORLD, iterations=4).signature()
            for s in range(8)
        }
        assert len(signatures) > 1

    def test_rank_zero_never_crashes(self):
        for seed in range(20):
            plan = FaultPlan.generate(
                seed=seed, world=WORLD, iterations=4, crash_rate=0.9
            )
            assert all(crash.rank != 0 for crash in plan.crashes)

    def test_crashes_leave_two_ranks_alive(self):
        for seed in range(20):
            plan = FaultPlan.generate(
                seed=seed, world=4, iterations=3, crash_rate=1.0
            )
            assert len(plan.crashes) <= 2

    def test_ready_delays_resolution(self):
        plan = FaultPlan(
            seed=1,
            iterations=3,
            stragglers=(StragglerFault(rank=1, iteration=1, delay_seconds=0.02),),
            crashes=(CrashFault(rank=2, iteration=1, rejoin_iteration=2),),
        )
        assert plan.ready_delays(0, [0, 1, 2]) == {0: 0.0, 1: 0.0, 2: 0.0}
        assert plan.ready_delays(1, [0, 1, 2]) == {0: 0.0, 1: 0.02, 2: None}
        assert plan.ready_delays(2, [0, 1, 2]) == {0: 0.0, 1: 0.0, 2: 0.0}
        assert plan.crashed_at(1) == [2]
        assert plan.rejoining_at(2) == [2]

    def test_message_actions_per_rank(self):
        plan = FaultPlan(
            seed=1,
            iterations=1,
            message_faults=(
                MessageFault(rank=1, submission_index=0, action=DROP),
                MessageFault(rank=1, submission_index=2, action=DUPLICATE),
            ),
        )
        assert plan.message_actions(1) == {0: DROP, 2: DUPLICATE}
        assert plan.message_actions(0) == {}

    @pytest.mark.parametrize(
        "bad",
        [
            lambda: FaultPlan(seed=1, iterations=0),
            lambda: FaultPlan(
                seed=1,
                iterations=2,
                crashes=(CrashFault(1, 0), CrashFault(1, 1)),
            ),
            lambda: StragglerFault(rank=0, iteration=0, delay_seconds=-1.0),
            lambda: CrashFault(rank=1, iteration=2, rejoin_iteration=2),
            lambda: LinkFault(0, 0.0, 0.1, bandwidth_fraction=1.0),
            lambda: LinkFault(0, 0.0, 0.1, bandwidth_fraction=0.5, flaps=0),
            lambda: MessageFault(rank=0, submission_index=0, action="corrupt"),
            lambda: FaultPlan.generate(seed=1, world=1, iterations=1),
        ],
    )
    def test_validation(self, bad):
        with pytest.raises(ChaosError):
            bad()


class TestReplayDeterminism:
    def test_same_seed_same_trace_and_tensors(self):
        plan = FaultPlan.generate(
            seed=CHAOS_SEED,
            world=WORLD,
            iterations=3,
            straggler_rate=0.4,
            crash_rate=0.3,
            link_fault_rate=0.5,
            num_instances=2,
        )
        first, second = run_plan(plan), run_plan(plan)
        assert first.plan_signature == second.plan_signature
        assert first.event_trace == second.event_trace
        assert first.final_members == second.final_members
        assert first.resyntheses == second.resyntheses
        a, b = first.final_outputs(), second.final_outputs()
        assert set(a) == set(b)
        for rank in a:
            np.testing.assert_array_equal(a[rank], b[rank])

    def test_every_iteration_bitwise_exact(self):
        for seed in (CHAOS_SEED, CHAOS_SEED + 1):
            plan = FaultPlan.generate(
                seed=seed,
                world=WORLD,
                iterations=3,
                straggler_rate=0.5,
                crash_rate=0.3,
            )
            report = run_plan(plan)
            assert report.all_exact

    def test_stragglers_only_matches_fault_free_run(self):
        """Injected stragglers shift *time*, never arithmetic: the chaotic
        run's tensors equal the fault-free run's, iteration for iteration."""
        stragglers = tuple(
            StragglerFault(rank=rank, iteration=iteration, delay_seconds=0.02)
            for iteration in range(3)
            for rank in (1, 5)
        )
        chaotic = run_plan(
            FaultPlan(seed=CHAOS_SEED, iterations=3, stragglers=stragglers)
        )
        clean = run_plan(FaultPlan(seed=CHAOS_SEED, iterations=3))
        assert chaotic.final_members == clean.final_members
        assert chaotic.all_exact and clean.all_exact
        for chaos_it, clean_it in zip(chaotic.iterations, clean.iterations):
            assert chaos_it.contributors == clean_it.contributors
            for rank in chaos_it.contributors:
                np.testing.assert_array_equal(
                    chaos_it.outputs[rank], clean_it.outputs[rank]
                )


class TestEvictionAndRejoin:
    def test_permanent_crash_is_evicted_and_resynthesized(self):
        plan = FaultPlan(
            seed=CHAOS_SEED, iterations=3, crashes=(CrashFault(rank=3, iteration=1),)
        )
        runner = ChaosRunner(SPECS, plan, length=256)
        report = runner.run()
        assert 3 not in report.final_members
        assert report.resyntheses >= 1
        assert any(event[1] == "chaos-evict" for event in report.event_trace)
        assert report.iterations[1].evicted == [3]
        assert 3 not in report.iterations[2].participants
        assert report.all_exact

    def test_eviction_keeps_global_batch_and_partition(self):
        plan = FaultPlan(
            seed=CHAOS_SEED, iterations=3, crashes=(CrashFault(rank=5, iteration=0),)
        )
        runner = ChaosRunner(SPECS, plan, length=256)
        before = runner.loader.global_batch
        report = runner.run()
        assert 5 not in report.final_members
        assert runner.loader.global_batch == before
        assert runner.loader.verify_partition()
        assert sum(runner.loader.next_batch().values()) == before

    def test_transient_crash_rejoins(self):
        plan = FaultPlan(
            seed=CHAOS_SEED,
            iterations=4,
            crashes=(CrashFault(rank=4, iteration=0, rejoin_iteration=2),),
        )
        runner = ChaosRunner(SPECS, plan, length=256)
        report = runner.run()
        assert report.iterations[0].evicted == [4]
        assert report.iterations[2].rejoined == [4]
        assert 4 in report.iterations[2].participants
        assert 4 in report.iterations[2].contributors  # grace, not re-eviction
        assert 4 in report.final_members
        assert report.resyntheses >= 2  # shrink, then grow back
        kinds = [event[1] for event in report.event_trace]
        assert "chaos-evict" in kinds and "chaos-rejoin" in kinds
        assert runner.loader.verify_partition()
        assert report.all_exact

    def test_whole_group_eviction_rejected(self):
        plan = FaultPlan(
            seed=1,
            iterations=2,
            crashes=tuple(CrashFault(rank=r, iteration=0) for r in range(WORLD)),
        )
        with pytest.raises(ChaosError):
            run_plan(plan)

    def test_crash_outside_cluster_rejected(self):
        plan = FaultPlan(seed=1, iterations=1, crashes=(CrashFault(rank=99, iteration=0),))
        with pytest.raises(ChaosError):
            ChaosRunner(SPECS, plan, length=128)


class TestLinkFaults:
    def test_degradation_restores_nominal_and_lints_clean(self):
        plan = FaultPlan(
            seed=CHAOS_SEED,
            iterations=2,
            link_faults=(
                LinkFault(0, start_seconds=0.0, duration_seconds=0.05, bandwidth_fraction=0.25),
            ),
        )
        recorder = TraceRecorder()
        report = run_plan(plan, recorder=recorder)
        assert report.all_exact
        link_events = [e for e in report.event_trace if e[1] == "chaos-link"]
        assert link_events[0][4] == 0.25  # degraded
        assert link_events[-1][4] == 1.0  # restored
        assert lint_chaos(recorder.records) == []

    def test_flapping_link_alternates(self):
        plan = FaultPlan(
            seed=CHAOS_SEED,
            iterations=2,
            link_faults=(
                LinkFault(
                    1,
                    start_seconds=0.0,
                    duration_seconds=0.06,
                    bandwidth_fraction=0.5,
                    flaps=3,
                ),
            ),
        )
        recorder = TraceRecorder()
        report = run_plan(plan, recorder=recorder)
        fractions = [e[4] for e in report.event_trace if e[1] == "chaos-link"]
        assert fractions == [0.5, 1.0, 0.5, 1.0, 0.5, 1.0]
        assert report.all_exact
        assert lint_chaos(recorder.records) == []

    def test_link_fault_outside_cluster_rejected(self):
        sim = Simulator()
        cluster = Cluster(sim, SPECS)
        plan = FaultPlan(
            seed=1,
            iterations=1,
            link_faults=(LinkFault(9, 0.0, 0.1, bandwidth_fraction=0.5),),
        )
        with pytest.raises(ChaosError):
            ChaosInjector(cluster, plan)


class TestQueueBoundaryFaults:
    def make_service(self, plan, timeout_seconds=0.01, max_retries=2):
        sim = Simulator()
        cluster = Cluster(sim, make_homo_cluster(num_servers=1, gpus_per_server=4))
        topology = LogicalTopology.from_cluster(cluster)
        synthesizer = Synthesizer(topology)

        def provider(primitive, tensor_size, participants):
            return synthesizer.synthesize(primitive, tensor_size, list(participants))

        service = CollectiveService(
            topology, provider, timeout_seconds=timeout_seconds, max_retries=max_retries
        )
        injector = ChaosInjector(cluster, plan)
        injector.attach_queues(service.queues)
        service.start()
        return sim, cluster, service, injector

    def drive(self, sim, cluster, service, iterations):
        results = {}

        def rank_process(rank):
            for iteration in range(iterations):
                tensor = np.full(64, float(rank + 1 + 10 * iteration))
                service.submit(rank, Primitive.ALLREDUCE, tensor)
                event = service.fetch(rank)
                yield event
                results.setdefault(rank, []).append(event.value)

        for gpu in cluster.gpus:
            sim.process(rank_process(gpu.rank), name=f"chaos-rank{gpu.rank}")
        sim.run()
        service.stop()
        return results

    def test_dropped_submission_degrades_gracefully(self):
        plan = FaultPlan(
            seed=1,
            iterations=2,
            message_faults=(MessageFault(rank=2, submission_index=0, action=DROP),),
        )
        sim, cluster, service, injector = self.make_service(plan)
        results = self.drive(sim, cluster, service, iterations=2)
        assert service.executed == 2
        assert len(service.degradations) == 1
        assert service.degradations[0].missing_ranks == (2,)
        # Round 0 ran among ranks 0/1/3 (tensors 1+2+4); rank 2 still got
        # the partial sum, tagged with the degraded sequence number.
        sequence, tensor = results[2][0]
        assert sequence == DEGRADED_SEQUENCE
        assert tensor[0] == 7.0
        for rank in (0, 1, 3):
            assert results[rank][0][1][0] == 7.0
        # Round 1 is whole again: 11+12+13+14.
        for rank in range(4):
            assert results[rank][1][1][0] == 50.0
        assert any(event[1] == "chaos-msg" for event in injector.trace)

    def test_duplicated_submission_is_suppressed(self):
        plan = FaultPlan(
            seed=1,
            iterations=2,
            message_faults=(MessageFault(rank=1, submission_index=1, action=DUPLICATE),),
        )
        sim, cluster, service, _ = self.make_service(plan)
        results = self.drive(sim, cluster, service, iterations=2)
        assert service.executed == 2
        assert service.duplicates_suppressed == 1
        assert service.degradations == []
        for rank in range(4):
            assert results[rank][0][1][0] == 10.0  # 1+2+3+4
            assert results[rank][1][1][0] == 50.0  # no double count

    def test_no_timeout_waits_forever(self):
        """Without timeout_seconds the seed semantics hold: a dropped
        submission stalls the round instead of degrading it."""
        plan = FaultPlan(
            seed=1,
            iterations=1,
            message_faults=(MessageFault(rank=0, submission_index=0, action=DROP),),
        )
        sim, cluster, service, _ = self.make_service(plan, timeout_seconds=None)
        for gpu in cluster.gpus:
            tensor = np.full(8, float(gpu.rank))
            service.submit(gpu.rank, Primitive.ALLREDUCE, tensor)
        sim.run()
        assert service.executed == 0
        assert service.degradations == []

    def test_service_parameter_validation(self):
        sim = Simulator()
        cluster = Cluster(sim, make_homo_cluster(num_servers=1, gpus_per_server=4))
        topology = LogicalTopology.from_cluster(cluster)
        with pytest.raises(CommunicatorError):
            CollectiveService(topology, None, timeout_seconds=0.0)
        with pytest.raises(CommunicatorError):
            CollectiveService(topology, None, max_retries=-1)
        with pytest.raises(CommunicatorError):
            CollectiveService(topology, None, backoff_factor=0.5)

    def test_retry_backoff_widens_windows(self):
        """A late (not lost) submission is captured by a retry window, so
        the round completes whole — no degradation entry."""
        sim = Simulator()
        cluster = Cluster(sim, make_homo_cluster(num_servers=1, gpus_per_server=4))
        topology = LogicalTopology.from_cluster(cluster)
        synthesizer = Synthesizer(topology)

        def provider(primitive, tensor_size, participants):
            return synthesizer.synthesize(primitive, tensor_size, list(participants))

        service = CollectiveService(
            topology, provider, timeout_seconds=0.01, max_retries=3, backoff_factor=2.0
        )
        service.start()

        def straggling_rank(rank, delay):
            yield sim.timeout(delay)
            service.submit(rank, Primitive.ALLREDUCE, np.full(8, float(rank + 1)))

        # 0.01 + 0.02 + 0.04 + 0.08 windows: a 0.05 s straggler lands in
        # the third window, inside max_retries.
        for gpu in cluster.gpus:
            delay = 0.05 if gpu.rank == 3 else 0.0
            sim.process(straggling_rank(gpu.rank, delay), name=f"late{gpu.rank}")
        sim.run()
        service.stop()
        assert service.executed == 1
        assert service.degradations == []


class TestChaosLint:
    def test_recorded_chaos_run_lints_clean(self):
        plan = FaultPlan.generate(
            seed=CHAOS_SEED,
            world=WORLD,
            iterations=3,
            straggler_rate=0.4,
            crash_rate=0.3,
            link_fault_rate=0.6,
            num_instances=2,
        )
        recorder = TraceRecorder()
        report = run_plan(plan, recorder=recorder)
        assert report.all_exact
        assert lint_chaos(recorder.records) == []

    def test_unrestored_link_flagged(self):
        recorder = TraceRecorder()
        recorder.record(0.0, "chaos-link", "instance0", instance=0, bandwidth_fraction=0.3)
        violations = lint_chaos(recorder.records)
        assert any(v.check == "chaos-link-restore" for v in violations)

    def test_bad_fraction_flagged(self):
        recorder = TraceRecorder()
        recorder.record(0.0, "chaos-link", "instance0", instance=0, bandwidth_fraction=1.5)
        violations = lint_chaos(recorder.records)
        assert any(v.check == "chaos-link-fraction" for v in violations)

    def test_uncaused_eviction_flagged(self):
        recorder = TraceRecorder()
        recorder.record(0.0, "chaos-evict", "rank3", iteration=0, rank=3)
        violations = lint_chaos(recorder.records)
        assert any(v.check == "chaos-evict-cause" for v in violations)

    def test_caused_eviction_clean(self):
        recorder = TraceRecorder()
        recorder.record(0.0, "chaos-crash", "rank3", iteration=0, rank=3)
        recorder.record(0.1, "chaos-evict", "rank3", iteration=0, rank=3)
        assert lint_chaos(recorder.records) == []
