"""Sim-determinism race detector (DESIGN.md §10).

Two halves, one pass:

**Static half** — an AST walk over the order-sensitive sub-packages
(``simulation/``, ``runtime/``, ``recovery/``, ``observe/``) flagging the
hazard patterns that make a discrete-event run depend on interpreter
incidentals instead of the event graph:

* ``race-unordered-iteration`` — a loop over a *set-typed* collection
  (set literal / ``set()`` / ``frozenset()`` / set comprehension / a
  local assigned from one) whose body reaches a scheduling or event-queue
  sink (``schedule``, ``enqueue``, ``heappush``, ``timeout``,
  ``process``, …). Set iteration order follows hash order, so the event
  queue's tie order — and with it the whole interleaving — changes with
  ``PYTHONHASHSEED``. Wrapping the iterable in ``sorted(...)`` clears it.
* ``race-unkeyed-timestamp`` — a ``heappush`` of a tuple with no
  monotonic tiebreak element (``seq`` / ``counter`` / ``priority`` /
  ``order`` / …): two same-timestamp events then compare by their
  payloads (or crash), so same-time handlers fire in an unstable order.
* ``race-float-accumulation`` — an in-place accumulation (``+=`` and
  friends) folded over an unordered collection: float addition is not
  associative, so the reduced value depends on hash order.

These are heuristics, reported at ``warning`` severity; the seeded
fixtures under ``tests/fixtures/hazards/`` pin their recall.

**Dynamic half** — ``race-happens-before`` at ``error`` severity. From a
synthesized :class:`~repro.synthesis.strategy.Strategy` we derive the
chunk-dependency DAG the executor is contractually bound to (the same
sender/aggregator construction as :func:`repro.analysis.verify_strategy.
stage_unreachable`, extended across the AllReduce reduce→broadcast stage
boundary), then replay an exported telemetry run against it with vector
clocks: every per-chunk ``…:send`` span is an event of its sender process
(one process per (edge, traffic unit)); an event's vector clock is the
pointwise max of its own process history and its DAG predecessors'
clocks. Any recorded interleaving in which a span starts before a DAG
predecessor has ended is a race — the executor committed to an ordering
the schedule did not honour — and is reported with both clocks.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.findings import (
    SEVERITY_ERROR,
    SEVERITY_WARNING,
    Finding,
)

PASS_NAME = "races"

#: Sub-packages whose code feeds the simulator's event ordering.
RACE_SENSITIVE_DIRS = ("simulation", "runtime", "recovery", "observe")

#: Callable names that put work on a schedule / event queue. A loop over
#: an unordered collection that calls one of these is order-sensitive.
SCHEDULING_SINKS = {
    "schedule",
    "enqueue",
    "heappush",
    "push",
    "put",
    "put_nowait",
    "submit",
    "timeout",
    "process",
    "defer",
    "call_later",
    "call_at",
    "add_event",
    "succeed",
    "trigger",
}

#: Identifier fragments that mark a heap tuple element as a tiebreak key.
TIEBREAK_FRAGMENTS = ("seq", "count", "tie", "order", "priority", "idx")

#: Wrappers that impose a deterministic order on any iterable.
_ORDERING_CALLS = {"sorted", "list", "tuple", "min", "max", "enumerate"}

#: In-place operators whose result depends on fold order for floats.
_ACCUMULATING_OPS = (ast.Add, ast.Sub, ast.Mult)

#: Per-span slack when comparing simulator timestamps.
_TIME_TOL = 1e-9


# -- static half ----------------------------------------------------------------------


def _default_root() -> Path:
    return Path(__file__).resolve().parents[1]


def lint_determinism_hazards(
    root: Optional[Path] = None,
    dirs: Sequence[str] = RACE_SENSITIVE_DIRS,
) -> List[Finding]:
    """Run the static hazard checks over ``dirs`` under ``root``."""
    root = Path(root) if root is not None else _default_root()
    findings: List[Finding] = []
    for sub in dirs:
        base = root / sub
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*.py")):
            findings.extend(_lint_file(path, root))
    return findings


def _lint_file(path: Path, root: Path) -> List[Finding]:
    try:
        rel = path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        rel = path.as_posix()
    try:
        tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    except SyntaxError as exc:
        return [
            Finding(
                code="syntax",
                message=str(exc.msg),
                pass_name=PASS_NAME,
                severity=SEVERITY_ERROR,
                subject=f"{rel}:{exc.lineno}",
                file=rel,
                line=exc.lineno,
            )
        ]
    checker = _HazardChecker(rel)
    checker.visit(tree)
    return checker.findings


class _HazardChecker(ast.NodeVisitor):
    """Flags the three static hazard patterns (module docstring)."""

    def __init__(self, rel: str):
        self.rel = rel
        self.findings: List[Finding] = []
        #: Local names known to hold set-typed values, per enclosing scope.
        self._set_scopes: List[Set[str]] = [set()]

    def _add(self, code: str, node: ast.AST, message: str) -> None:
        line = getattr(node, "lineno", 0)
        self.findings.append(
            Finding(
                code=code,
                message=message,
                pass_name=PASS_NAME,
                severity=SEVERITY_WARNING,
                subject=f"{self.rel}:{line}",
                file=self.rel,
                line=line,
            )
        )

    # -- scope + set-typed dataflow ------------------------------------------------

    def _enter_scope(self) -> None:
        self._set_scopes.append(set())

    def _leave_scope(self) -> None:
        self._set_scopes.pop()

    def _mark_set(self, name: str) -> None:
        self._set_scopes[-1].add(name)

    def _is_set_name(self, name: str) -> bool:
        return any(name in scope for scope in self._set_scopes)

    def _is_set_expr(self, node: ast.expr) -> bool:
        """Syntactically set-typed: literals, constructors, set algebra."""
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return self._is_set_name(node.id)
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
                return True
            if isinstance(func, ast.Attribute) and func.attr in (
                "union",
                "intersection",
                "difference",
                "symmetric_difference",
            ):
                return self._is_set_expr(func.value)
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return self._is_set_expr(node.left) or self._is_set_expr(node.right)
        return False

    def _is_unordered_iter(self, node: ast.expr) -> bool:
        """Whether iterating ``node`` yields a hash-ordered sequence."""
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in _ORDERING_CALLS:
                return False  # sorted(...)/list(...) normalize the order
        return self._is_set_expr(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._enter_scope()
        self.generic_visit(node)
        self._leave_scope()

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._enter_scope()
        self.generic_visit(node)
        self._leave_scope()

    def visit_Assign(self, node: ast.Assign) -> None:
        if self._is_set_expr(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self._mark_set(target.id)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        ann = node.annotation
        is_set_ann = (isinstance(ann, ast.Name) and ann.id in ("set", "frozenset")) or (
            isinstance(ann, ast.Subscript)
            and isinstance(ann.value, ast.Name)
            and ann.value.id in ("set", "Set", "FrozenSet", "frozenset")
        )
        if isinstance(node.target, ast.Name) and (
            is_set_ann or (node.value is not None and self._is_set_expr(node.value))
        ):
            self._mark_set(node.target.id)
        self.generic_visit(node)

    # -- hazard 1 + 3: unordered iteration ------------------------------------------

    def visit_For(self, node: ast.For) -> None:
        if self._is_unordered_iter(node.iter):
            sink = _find_scheduling_sink(node.body)
            if sink is not None:
                self._add(
                    "race-unordered-iteration",
                    node,
                    f"loop over an unordered set reaches scheduling sink "
                    f"`{sink}`; event order then follows hash order — iterate "
                    "`sorted(...)` instead",
                )
            accum = _find_accumulation(node.body)
            if accum is not None:
                self._add(
                    "race-float-accumulation",
                    accum,
                    f"in-place accumulation into `{_target_name(accum)}` folds "
                    "over an unordered set; float addition is not associative, "
                    "so the result depends on hash order — iterate "
                    "`sorted(...)` instead",
                )
        self.generic_visit(node)

    # -- hazard 2: unkeyed heap timestamps -------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        name = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        if name == "heappush" and len(node.args) >= 2:
            entry = node.args[1]
            if isinstance(entry, ast.Tuple) and not _has_tiebreak(entry):
                self._add(
                    "race-unkeyed-timestamp",
                    node,
                    "heap entry has no monotonic tiebreak element; two "
                    "same-timestamp events compare by payload (unstable or "
                    "TypeError) — push `(time, seq, item)`",
                )
        # Comprehension fed straight into a sink counts as unordered
        # iteration reaching a scheduling decision too.
        if name in SCHEDULING_SINKS:
            for arg in node.args:
                if isinstance(arg, (ast.ListComp, ast.GeneratorExp, ast.SetComp)):
                    for comp in arg.generators:
                        if self._is_unordered_iter(comp.iter):
                            self._add(
                                "race-unordered-iteration",
                                arg,
                                f"comprehension over an unordered set feeds "
                                f"scheduling sink `{name}`; iterate "
                                "`sorted(...)` instead",
                            )
                            break
        self.generic_visit(node)


def _find_scheduling_sink(body: Sequence[ast.stmt]) -> Optional[str]:
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call):
                func = node.func
                if isinstance(func, ast.Name) and func.id in SCHEDULING_SINKS:
                    return func.id
                if isinstance(func, ast.Attribute) and func.attr in SCHEDULING_SINKS:
                    return func.attr
    return None


def _find_accumulation(body: Sequence[ast.stmt]) -> Optional[ast.AugAssign]:
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.AugAssign) and isinstance(
                node.op, _ACCUMULATING_OPS
            ):
                return node
    return None


def _target_name(node: ast.AugAssign) -> str:
    target = node.target
    if isinstance(target, ast.Name):
        return target.id
    if isinstance(target, ast.Attribute):
        return target.attr
    return ast.dump(target)


def _has_tiebreak(entry: ast.Tuple) -> bool:
    for element in entry.elts:
        for node in ast.walk(element):
            ident = None
            if isinstance(node, ast.Name):
                ident = node.id
            elif isinstance(node, ast.Attribute):
                ident = node.attr
            if ident is not None:
                lowered = ident.lower()
                if any(fragment in lowered for fragment in TIEBREAK_FRAGMENTS):
                    return True
    return False


# -- dynamic half: chunk-dependency DAG vs telemetry -----------------------------------


def unit_label(unit: Tuple) -> str:
    """Canonical string form of an executor traffic unit, for span args."""
    kind, value = unit
    return f"{kind}:{value}"


@dataclass(frozen=True)
class SenderId:
    """One executor sender process: a (stage, edge, unit) triple."""

    tag: str
    src: str
    dst: str
    unit: str

    @property
    def track(self) -> str:
        return f"link:{self.src}->{self.dst}"

    def __str__(self) -> str:
        return f"{self.tag}[{self.src}->{self.dst} {self.unit}]"


@dataclass
class SenderGraph:
    """The strategy-derived chunk-dependency DAG, per sender process.

    ``preds[s]`` is a list of AND-groups: for every group, at least one
    member sender's chunk-k span must end before ``s``'s chunk-k span
    starts (OR within a group — whichever copy of the unit lands first
    releases the slot; AND across groups — an aggregator waits for every
    incoming unit). Same-sender chunks additionally serialize k-1 → k.
    """

    senders: List[SenderId] = field(default_factory=list)
    preds: Dict[SenderId, List[List[SenderId]]] = field(default_factory=dict)


#: Stage construction per primitive: (tag prefix, reversed paths?, mode).
#: Mirrors ``repro.runtime.collectives`` — the tags the pipelines carry.
_STAGES = {
    "reduce": (("reduce", False, "merge"),),
    "reduce_scatter": (("rs", False, "merge"),),
    "allreduce": (("allreduce-red", False, "merge"), ("allreduce-bc", True, "grouped")),
    "broadcast": (("bcast", False, "grouped"),),
    "allgather": (("allgather", False, "grouped"),),
    "alltoall": (("a2a", False, "independent"),),
}


def _stage_units(
    paths: Sequence[Tuple[int, Sequence]], mode: str, aggregates_at
) -> Dict[Tuple[str, str, str], None]:
    """Ordered sender set {(src, dst, unit): None} for one stage."""

    def unit_at(flow_idx: int, path: Sequence, path_idx: int) -> str:
        if mode == "grouped":
            return unit_label(("bcast", path[0]))
        if mode == "independent":
            return unit_label(("flow", flow_idx))
        unit = unit_label(("flow", flow_idx))
        for idx in range(path_idx + 1):
            if aggregates_at(path[idx]):
                unit = unit_label(("agg", path[idx]))
        return unit

    senders: Dict[Tuple[str, str, str], None] = {}
    for flow_idx, path in paths:
        for p in range(len(path) - 1):
            senders.setdefault(
                (str(path[p]), str(path[p + 1]), unit_at(flow_idx, path, p))
            )
    return senders


def derive_chunk_dag(strategy) -> SenderGraph:
    """Derive the happens-before DAG over sender processes from a strategy."""
    stages = _STAGES[strategy.primitive.value]
    graph = SenderGraph()
    for sc in strategy.subcollectives:
        if not sc.flows:
            continue
        prev_stage: Optional[Tuple[str, Dict[SenderId, None]]] = None
        prev_root: Optional[str] = None
        for prefix, reverse, mode in stages:
            tag = f"{prefix}:m{sc.index}"
            agg = sc.aggregates_at if mode == "merge" else (lambda node: False)
            paths = [
                (idx, list(reversed(flow.path)) if reverse else list(flow.path))
                for idx, flow in enumerate(sc.flows)
            ]
            raw = _stage_units(paths, mode, agg)
            by_key = {
                key: SenderId(tag, key[0], key[1], key[2]) for key in raw
            }
            #: Incoming units per node: node -> unit -> [senders carrying it].
            incoming: Dict[str, Dict[str, List[SenderId]]] = {}
            for (src, dst, unit), sender in (
                (key, by_key[key]) for key in raw
            ):
                incoming.setdefault(dst, {}).setdefault(unit, []).append(sender)
            for (src, dst, unit), sender in ((key, by_key[key]) for key in raw):
                groups: List[List[SenderId]] = []
                if mode == "merge" and unit == unit_label(("agg", src)) and any(
                    u != unit for u in incoming.get(src, {})
                ):
                    # Aggregator output: waits for EVERY incoming unit at
                    # src (AND across units, OR within each unit's copies).
                    for in_unit in sorted(incoming.get(src, {})):
                        if in_unit == unit:
                            continue
                        groups.append(incoming[src][in_unit])
                elif unit in incoming.get(src, {}):
                    # Pass-through: the same unit must have arrived at src
                    # over some in-edge (whichever copy lands first).
                    groups.append(incoming[src][unit])
                elif prev_stage is not None and src == prev_root:
                    # Stage boundary (AllReduce): a broadcast send out of
                    # the root waits for the reduce stage's aggregation
                    # there — every reduce unit arriving at the root.
                    _prev_tag, prev_incoming = prev_stage
                    for in_unit in sorted(prev_incoming.get(src, {})):
                        groups.append(prev_incoming[src][in_unit])
                graph.senders.append(sender)
                graph.preds[sender] = groups
            if sc.root is not None:
                prev_root = str(sc.root)
            prev_stage = (tag, incoming)
    return graph


def check_run_against_dag(strategy, run, tol: float = _TIME_TOL) -> List[Finding]:
    """Vector-clock happens-before check of a telemetry run against the DAG.

    ``run`` is a parsed :class:`~repro.telemetry.export.TelemetryRun`.
    Returns ``race-happens-before`` findings for every recorded chunk span
    that starts before a DAG predecessor ended, and ``race-dag-coverage``
    when the run is missing spans the DAG says must exist.
    """
    graph = derive_chunk_dag(strategy)
    findings: List[Finding] = []
    wanted = {(s.tag, s.track, s.unit): s for s in graph.senders}

    # Collect per-sender chunk spans, in file order (= (start, seq) order).
    spans: Dict[SenderId, Dict[int, Tuple[float, float, int]]] = {}
    order_index = 0
    for record in run.records:
        if record.get("type") != "span" or record.get("cat") != "chunk":
            continue
        name = record.get("name", "")
        if not name.endswith(":send"):
            continue
        tag = name[: -len(":send")]
        args = record.get("args", {})
        unit = args.get("unit")
        key = (tag, record.get("track", ""), unit)
        sender = wanted.get(key)
        if sender is None:
            continue
        chunk = int(args.get("chunk", -1))
        end = record.get("end")
        if chunk < 0 or end is None:
            continue
        spans.setdefault(sender, {})[chunk] = (
            float(record["start"]),
            float(end),
            order_index,
        )
        order_index += 1

    # Coverage: all senders of one stage carry the same chunk count, and a
    # sender the DAG requires must have produced spans at all.
    chunks_by_tag: Dict[str, Set[int]] = {}
    for sender in graph.senders:
        if sender not in spans:
            findings.append(
                Finding(
                    code="race-dag-coverage",
                    message=(
                        f"the strategy's DAG expects sender {sender} but the "
                        "run recorded no chunk spans for it"
                    ),
                    pass_name=PASS_NAME,
                    severity=SEVERITY_ERROR,
                    subject=str(sender),
                )
            )
            continue
        chunks_by_tag.setdefault(sender.tag, set()).update(spans[sender])
    for tag, chunk_set in sorted(chunks_by_tag.items()):
        expected = set(range(max(chunk_set) + 1))
        for sender in graph.senders:
            if sender.tag != tag or sender not in spans:
                continue
            missing = expected - set(spans[sender])
            if missing:
                findings.append(
                    Finding(
                        code="race-dag-coverage",
                        message=(
                            f"sender {sender} is missing chunk span(s) "
                            f"{sorted(missing)} of {len(expected)}"
                        ),
                        pass_name=PASS_NAME,
                        severity=SEVERITY_ERROR,
                        subject=str(sender),
                    )
                )
    if findings:
        return findings

    # Vector clocks: one component per sender process; an event's clock is
    # the pointwise max over its own history and its DAG predecessors'.
    index_of = {sender: i for i, sender in enumerate(graph.senders)}
    clock_of: Dict[Tuple[SenderId, int], List[int]] = {}
    width = len(graph.senders)

    def clock(sender: SenderId, chunk: int) -> List[int]:
        key = (sender, chunk)
        cached = clock_of.get(key)
        if cached is not None:
            return cached
        vc = [0] * width
        if chunk > 0:
            for i, v in enumerate(clock(sender, chunk - 1)):
                if v > vc[i]:
                    vc[i] = v
        for group in graph.preds[sender]:
            # The slot is released by whichever group member *ends* first.
            first = min(group, key=lambda p: (spans[p][chunk][1], spans[p][chunk][0]))
            for i, v in enumerate(clock(first, chunk)):
                if v > vc[i]:
                    vc[i] = v
        vc[index_of[sender]] = chunk + 1
        clock_of[key] = vc
        return vc

    for sender in graph.senders:
        for chunk in sorted(spans[sender]):
            start, _end, _ord = spans[sender][chunk]
            required: List[Tuple[SenderId, int]] = []
            if chunk > 0:
                required.append((sender, chunk - 1))
            for group in graph.preds[sender]:
                first = min(
                    group, key=lambda p: (spans[p][chunk][1], spans[p][chunk][0])
                )
                required.append((first, chunk))
            for pred, pred_chunk in required:
                pred_end = spans[pred][pred_chunk][1]
                if pred_end > start + tol:
                    findings.append(
                        Finding(
                            code="race-happens-before",
                            message=(
                                f"chunk {chunk} of {sender} starts at "
                                f"t={start:.9g} before its DAG predecessor "
                                f"(chunk {pred_chunk} of {pred}) ends at "
                                f"t={pred_end:.9g}: the DAG orders them "
                                f"(VC {clock(pred, pred_chunk)} ≤ "
                                f"{clock(sender, chunk)}) but the recorded "
                                "schedule ran them out of order"
                            ),
                            pass_name=PASS_NAME,
                            severity=SEVERITY_ERROR,
                            subject=f"{sender}#chunk{chunk}",
                        )
                    )
    return findings
