"""Static lint over a recovery control-plane journal.

The :class:`~repro.recovery.log.EventLog` a
:class:`~repro.recovery.control_plane.RecoveringControlPlane` accumulates
is a complete account of who coordinated what, under which epoch. This
pass checks the safety contract of the recovery design on that record:

* **total order** — record indices are gapless from 0 and timestamps
  never go backwards (the journal is the replay authority; a gap or a
  time reversal means a record was lost or fabricated);
* **epoch discipline** — epochs never decrease, and every epoch after the
  first opens with an ``election`` record (an epoch without an election
  is a coordinator that promoted itself);
* **single leader** — no two coordinators act within one epoch: every
  record of an epoch names the coordinator its election installed;
* **quorum-committed strategies** — every ``strategy-commit`` pairs with
  a same-epoch ``strategy-prepare`` for the same transition, backed by
  same-epoch ``prepare-ack`` records from a majority of the prepared
  members (each ack from a rank that was actually proposed);
* **rollback pairing** — every ``strategy-rollback`` names a transition
  that was prepared and never committed, and every prepare is eventually
  resolved (committed or rolled back) rather than left dangling.

Violations share the :class:`repro.analysis.verify_strategy.Violation`
record type so ``python -m repro.analysis --recovery`` reports uniformly.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.analysis.verify_strategy import Violation
from repro.recovery.log import EventLog, LogRecord
from repro.recovery.transitions import quorum_size


def _records(log: Union[EventLog, Iterable[LogRecord]]) -> List[LogRecord]:
    if isinstance(log, EventLog):
        return list(log.records)
    return list(log)


def lint_recovery(log: Union[EventLog, Iterable[LogRecord]]) -> List[Violation]:
    """Check one journal; returns all violations (empty = clean)."""
    records = _records(log)
    violations: List[Violation] = []
    violations.extend(_check_order(records))
    violations.extend(_check_epochs(records))
    violations.extend(_check_transitions(records))
    return violations


def _check_order(records: Sequence[LogRecord]) -> List[Violation]:
    violations: List[Violation] = []
    last_time = float("-inf")
    for position, record in enumerate(records):
        if record.index != position:
            violations.append(
                Violation(
                    "record-index",
                    f"record{position}",
                    f"index {record.index} breaks the gapless total order",
                )
            )
        if record.time < last_time:
            violations.append(
                Violation(
                    "record-time",
                    f"record{record.index}",
                    f"{record.kind} at t={record.time} after t={last_time}",
                )
            )
        last_time = max(last_time, record.time)
    return violations


def _check_epochs(records: Sequence[LogRecord]) -> List[Violation]:
    violations: List[Violation] = []
    first_epoch: Optional[int] = None
    last_epoch: Optional[int] = None
    coordinator_of: Dict[int, int] = {}
    for record in records:
        if first_epoch is None:
            first_epoch = record.epoch
        if last_epoch is not None and record.epoch < last_epoch:
            violations.append(
                Violation(
                    "epoch-regression",
                    f"record{record.index}",
                    f"epoch {record.epoch} after epoch {last_epoch}",
                )
            )
        new_epoch = record.epoch not in coordinator_of
        if new_epoch:
            coordinator_of[record.epoch] = record.coordinator
            if record.epoch != first_epoch and record.kind != "election":
                violations.append(
                    Violation(
                        "election-first",
                        f"epoch{record.epoch}",
                        f"epoch opens with {record.kind!r}, not an election",
                    )
                )
        elif record.coordinator != coordinator_of[record.epoch]:
            violations.append(
                Violation(
                    "split-brain",
                    f"epoch{record.epoch}",
                    f"coordinator {record.coordinator} acted in an epoch "
                    f"led by {coordinator_of[record.epoch]} "
                    f"(record {record.index})",
                )
            )
        last_epoch = record.epoch
    return violations


def _check_transitions(records: Sequence[LogRecord]) -> List[Violation]:
    violations: List[Violation] = []
    #: transition id -> (epoch, prepared members) of its latest prepare.
    prepares: Dict[int, Tuple[int, Tuple[int, ...]]] = {}
    #: transition id -> set of (epoch, rank) acks.
    acks: Dict[int, set] = {}
    resolved: Dict[int, str] = {}
    for record in records:
        transition = record.get("transition")
        if record.kind == "strategy-prepare":
            prepares[int(transition)] = (
                record.epoch,
                tuple(record.get("members", ())),
            )
            resolved.pop(int(transition), None)
        elif record.kind == "prepare-ack":
            acks.setdefault(int(transition), set()).add(
                (record.epoch, int(record.get("rank", -1)))
            )
        elif record.kind == "strategy-commit":
            violations.extend(_check_commit(record, prepares, acks))
            resolved[int(transition)] = "commit"
        elif record.kind == "strategy-rollback":
            tid = int(transition)
            if tid not in prepares:
                violations.append(
                    Violation(
                        "rollback-unprepared",
                        f"transition{tid}",
                        f"rollback at record {record.index} names a "
                        "transition that was never prepared",
                    )
                )
            elif resolved.get(tid) == "commit":
                violations.append(
                    Violation(
                        "rollback-after-commit",
                        f"transition{tid}",
                        f"rollback at record {record.index} voids an "
                        "already-committed transition",
                    )
                )
            resolved[int(transition)] = "rollback"
    for tid in sorted(prepares):
        if tid not in resolved:
            violations.append(
                Violation(
                    "dangling-prepare",
                    f"transition{tid}",
                    "prepared but never committed or rolled back",
                )
            )
    return violations


def _check_commit(
    record: LogRecord,
    prepares: Dict[int, Tuple[int, Tuple[int, ...]]],
    acks: Dict[int, set],
) -> List[Violation]:
    violations: List[Violation] = []
    tid = int(record.get("transition", -1))
    prepared = prepares.get(tid)
    if prepared is None:
        return [
            Violation(
                "commit-unprepared",
                f"transition{tid}",
                f"commit at record {record.index} was never prepared",
            )
        ]
    prepare_epoch, members = prepared
    if prepare_epoch != record.epoch:
        violations.append(
            Violation(
                "commit-epoch",
                f"transition{tid}",
                f"committed in epoch {record.epoch} but prepared in "
                f"epoch {prepare_epoch}",
            )
        )
    same_epoch_acks = {
        rank for (epoch, rank) in acks.get(tid, set()) if epoch == record.epoch
    }
    stray = same_epoch_acks - set(members)
    if stray:
        violations.append(
            Violation(
                "ack-nonmember",
                f"transition{tid}",
                f"acks from ranks outside the proposal: {sorted(stray)}",
            )
        )
    needed = quorum_size(members)
    if len(same_epoch_acks & set(members)) < needed:
        violations.append(
            Violation(
                "commit-quorum",
                f"transition{tid}",
                f"{len(same_epoch_acks & set(members))} same-epoch acks "
                f"< quorum {needed} of {len(members)} members",
            )
        )
    return violations
