"""On-the-fly link profiling (paper Sec. IV-B)."""

from repro.profiling.probes import ProbePlan, DEFAULT_PROBE_PLAN
from repro.profiling.profiler import ProfileResult, Profiler
from repro.profiling.rounds import inter_instance_rounds

__all__ = [
    "DEFAULT_PROBE_PLAN",
    "ProbePlan",
    "ProfileResult",
    "Profiler",
    "inter_instance_rounds",
]
