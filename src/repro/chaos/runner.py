"""End-to-end chaos execution: a fault plan driven through the full stack.

:class:`ChaosRunner` owns one simulated cluster and replays one
:class:`~repro.chaos.plan.FaultPlan` against it, iteration by iteration:

1. the :class:`~repro.chaos.injector.ChaosInjector` resolves the plan into
   per-rank ready delays (and has already armed link faults on the fluid
   network);
2. the relay coordinator's ski-rental rule decides wait-vs-proceed on
   those *injected* ready times, and the two-phase adaptive AllReduce
   executes on the unchanged graph;
3. workers the :class:`~repro.relay.faults.FaultDetector` declares faulty
   are evicted from the group, the data loader redistributes shards so the
   global batch stays constant, and the next iteration's strategy is
   **re-synthesized on the shrunk topology**;
4. a transient crasher rejoins at its planned iteration: membership grows
   back, the strategy is re-synthesized again, and — the regression this
   module guards — the rejoiner gets grace for the iteration in which it
   has not yet reported (it is *unreported*, not faulty).

Every iteration's outputs are checked against the bitwise-exact reference
(the elementwise sum over the ranks that actually contributed), so the
conformance suite's central claim — chunked, pipelined, two-phase,
fault-ridden execution never changes the arithmetic — is asserted on
every run, not just in dedicated tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.chaos.injector import ChaosInjector
from repro.chaos.plan import FaultPlan
from repro.errors import ChaosError
from repro.hardware.cluster import Cluster
from repro.hardware.instance import InstanceSpec
from repro.relay.coordinator import AdaptiveAllReduce, AdaptiveResult
from repro.simulation.engine import Simulator
from repro.simulation.records import TraceRecorder
from repro.synthesis.optimizer import Synthesizer
from repro.synthesis.strategy import Primitive, Strategy
from repro.topology.graph import LogicalTopology
from repro.training.data import ShardedDataLoader


@dataclass
class IterationOutcome:
    """What one chaos-driven iteration did and produced."""

    iteration: int
    participants: List[int]
    contributors: List[int]
    proceeded: bool
    relays: List[int]
    evicted: List[int]
    rejoined: List[int]
    outputs: Dict[int, np.ndarray]
    expected: np.ndarray
    duration: float

    @property
    def exact(self) -> bool:
        """Whether every contributor's output equals the reference sum."""
        return all(
            np.array_equal(self.outputs[rank], self.expected)
            for rank in self.contributors
        )


@dataclass
class ChaosRunReport:
    """Everything a conformance test needs to compare two replays."""

    plan_signature: Tuple
    iterations: List[IterationOutcome] = field(default_factory=list)
    event_trace: List[Tuple] = field(default_factory=list)
    final_members: List[int] = field(default_factory=list)
    resyntheses: int = 0

    @property
    def all_exact(self) -> bool:
        """Whether every iteration's aggregation was bitwise exact."""
        return all(outcome.exact for outcome in self.iterations)

    def final_outputs(self) -> Dict[int, np.ndarray]:
        """Last iteration's per-rank outputs (the replay-equality anchor)."""
        return self.iterations[-1].outputs if self.iterations else {}


class ChaosRunner:
    """Replays one fault plan over a fresh simulated cluster."""

    def __init__(
        self,
        specs: Sequence[InstanceSpec],
        plan: FaultPlan,
        length: int = 2048,
        byte_scale: float = 1.0,
        max_chunks: Optional[int] = 8,
        recorder: Optional[TraceRecorder] = None,
        dataset_size: int = 4096,
    ):
        self.sim = Simulator()
        self.cluster = Cluster(self.sim, specs)
        if recorder is not None:
            self.cluster.network.attach_recorder(recorder)
        self.topology = LogicalTopology.from_cluster(self.cluster)
        self.synthesizer = Synthesizer(self.topology)
        self.plan = plan
        self.length = length
        self.byte_scale = byte_scale
        self.max_chunks = max_chunks
        self.injector = ChaosInjector(self.cluster, plan, recorder=recorder)
        self.adaptive = AdaptiveAllReduce(self.topology, seed=plan.seed)
        ranks = [gpu.rank for gpu in self.cluster.gpus]
        if any(c.rank not in ranks for c in plan.crashes):
            raise ChaosError("plan crashes ranks outside the cluster")
        self.members: List[int] = sorted(ranks)
        self.loader = ShardedDataLoader(
            dataset_size=dataset_size, global_batch=len(ranks) * 8, workers=list(ranks)
        )
        self._strategy: Optional[Strategy] = None
        self._strategy_members: Optional[Tuple[int, ...]] = None
        self.resyntheses = 0

    # -- strategy management ---------------------------------------------------

    def _strategy_for(self, members: Sequence[int]) -> Strategy:
        """Current strategy, re-synthesized when membership changed."""
        key = tuple(members)
        if self._strategy is None or self._strategy_members != key:
            first = self._strategy is None
            tensor_size = self.length * 8 * self.byte_scale
            self._strategy = self.synthesizer.synthesize(
                Primitive.ALLREDUCE, tensor_size, list(members)
            )
            self._strategy_members = key
            if not first:
                self.resyntheses += 1
            self.injector.record(
                "chaos-resynthesis", "synthesizer", key,
                members=list(key),
            )
        return self._strategy

    # -- inputs ----------------------------------------------------------------

    def _inputs_for(self, rng: np.random.Generator, ranks: Sequence[int]):
        """Integer-valued float64 tensors: float addition over them is exact
        in any order, which is what makes 'bitwise equal' well-defined for
        differently-shaped aggregation trees."""
        return {
            rank: rng.integers(0, 64, self.length).astype(np.float64)
            for rank in ranks
        }

    # -- execution -------------------------------------------------------------

    def run(self) -> ChaosRunReport:
        """Replay the whole plan; returns the comparable report."""
        self.injector.start()
        rng = np.random.default_rng(self.plan.seed)
        report = ChaosRunReport(plan_signature=self.plan.signature())
        all_ranks = sorted(gpu.rank for gpu in self.cluster.gpus)

        for iteration in range(self.plan.iterations):
            # Rejoin transient crashers whose window ends here (if they
            # were evicted; a crasher that was never detected — e.g. its
            # window fell between collectives — is still a member).
            rejoined = [
                rank
                for rank in self.plan.rejoining_at(iteration)
                if rank not in self.members
            ]
            if rejoined:
                self.members = sorted(set(self.members) | set(rejoined))
                self.loader.readmit(rejoined)
                for rank in rejoined:
                    self.injector.record(
                        "chaos-rejoin", f"rank{rank}", iteration, rank,
                        iteration=iteration, rank=rank,
                    )

            participants = list(self.members)
            # Inputs are drawn for the full cluster every iteration so the
            # stream consumed per rank is membership-independent — replays
            # with different eviction timing still agree on tensors.
            inputs_all = self._inputs_for(rng, all_ranks)
            inputs = {rank: inputs_all[rank] for rank in participants}
            ready = self.injector.ready_delays(iteration, participants)
            strategy = self._strategy_for(participants)

            if all(delay is None for delay in ready.values()):
                raise ChaosError(f"iteration {iteration}: no worker alive")

            result: AdaptiveResult = self.adaptive.run(
                strategy,
                inputs,
                ready,
                byte_scale=self.byte_scale,
                max_chunks=self.max_chunks,
            )

            faulty = (
                list(result.fault_report.faulty_ranks)
                if result.fault_report is not None
                else []
            )
            contributors = [rank for rank in participants if rank not in faulty]
            expected = np.zeros(self.length, dtype=np.float64)
            for rank in contributors:
                expected += inputs[rank]

            report.iterations.append(
                IterationOutcome(
                    iteration=iteration,
                    participants=participants,
                    contributors=contributors,
                    proceeded=result.decision.proceed,
                    relays=list(result.decision.relays),
                    evicted=faulty,
                    rejoined=rejoined,
                    outputs=result.outputs,
                    expected=expected,
                    duration=result.duration,
                )
            )

            if faulty:
                # Eviction: shrink the group, rebalance shards (global
                # batch unchanged), and force re-synthesis next iteration.
                self.members = [r for r in self.members if r not in faulty]
                if not self.members:
                    raise ChaosError("chaos plan evicted the whole group")
                self.loader.redistribute(self.members)
                for rank in sorted(faulty):
                    self.injector.record(
                        "chaos-evict", f"rank{rank}", iteration, rank,
                        iteration=iteration, rank=rank,
                    )

        # Drain the (finite) link-fault processes: the adaptive executor
        # advances time only as far as each collective needs, so a fault
        # window reaching past the last iteration still owes its nominal-
        # bandwidth restoration.
        self.sim.run()

        report.event_trace = list(self.injector.trace)
        report.final_members = list(self.members)
        report.resyntheses = self.resyntheses
        return report
